// Hardened-execution benchmark with machine-readable JSON output: CI gates
// the overhead of the always-on hardening plumbing (deadline/cancellation
// polling at the check sites plus RowBlock memory accounting) and reports
// how fast a deadline abort actually lands.
//
//   * cyclic_join / ucq_mix (from bench_parallel): each runs "baseline"
//     (no deadline, no budget — the polling still exists but the
//     QueryContext is null, the production default) against "hardened"
//     (a generous deadline + memory budget armed, so every check site pays
//     the full armed-path cost and every RowBlock is accounted). The CI
//     gate requires hardened/baseline <= 1.05 on best-of times.
//   * abort_latency: a multi-million-row join is given a deadline far
//     shorter than its runtime; "seconds" reports the overshoot past the
//     deadline (how long after the deadline the clean error surfaced).
//
// Output: a JSON array of
// {"bench", "impl", "rows", "seconds", "output_rows", "rows_per_sec"}.
//
// Usage: bench_robustness [--quick] [--threads N]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/engine.hpp"
#include "query/parser.hpp"
#include "relational/database.hpp"

namespace paraquery {
namespace {

struct Entry {
  std::string bench, impl;
  size_t rows = 0;
  double seconds = 0;
  size_t output_rows = 0;
  double rows_per_sec = 0;
};

std::vector<Entry> g_entries;

void ExpectIdentical(const char* bench, const Relation& reference,
                     const Relation& candidate) {
  if (reference.arity() == candidate.arity() &&
      reference.size() == candidate.size() &&
      reference.data() == candidate.data()) {
    return;
  }
  std::fprintf(stderr, "FATAL: %s: output is not byte-identical\n", bench);
  std::exit(1);
}

Engine MakeEngine(const Database& db, size_t threads, bool hardened) {
  EngineOptions options;
  options.threads = threads;
  // Both impls pay identical planning: the comparison is check-site +
  // accounting overhead, not cache effects.
  options.use_plan_cache = false;
  if (hardened) {
    options.limits.max_wall_ms = 600000;     // 10 min: never trips
    options.limits.max_bytes = 1ull << 40;   // 1 TiB: never trips
  }
  return Engine(db, options);
}

// One bench: the same parsed query through a baseline engine and a hardened
// engine (generous limits, so the full armed cost is paid on every check
// site and allocation, but nothing ever aborts). Answers must stay
// byte-identical; interleaved best-of reps feed the overhead gate.
template <typename Query>
void RunBench(const std::string& name, const Database& db, const Query& q,
              size_t rows, int reps, size_t threads) {
  const std::string bench = name + "_t" + std::to_string(threads);
  Engine baseline = MakeEngine(db, threads, /*hardened=*/false);
  Engine hardened = MakeEngine(db, threads, /*hardened=*/true);
  Relation reference = std::move(baseline.Run(q)).ValueOrDie();
  Relation guarded = std::move(hardened.Run(q)).ValueOrDie();
  ExpectIdentical(bench.c_str(), reference, guarded);
  double best_base = 1e300, best_hard = 1e300;
  for (int r = 0; r < reps; ++r) {
    {
      Timer t;
      reference = std::move(baseline.Run(q)).ValueOrDie();
      best_base = std::min(best_base, t.Seconds());
    }
    {
      Timer t;
      guarded = std::move(hardened.Run(q)).ValueOrDie();
      best_hard = std::min(best_hard, t.Seconds());
    }
  }
  auto push = [&](const std::string& impl, double best, const Relation& out) {
    g_entries.push_back(Entry{bench, impl, rows, best, out.size(),
                              static_cast<double>(rows) / best});
  };
  push("baseline", best_base, reference);
  push("hardened", best_hard, guarded);
}

// Shared workload shapes (seeds and queries match bench_parallel, so the
// overhead numbers are comparable with the speedup numbers CI already
// tracks).

void BenchCyclicJoin(size_t scale, int reps, size_t threads) {
  Rng rng(314159);
  const Value domain = 2000;
  Database db;
  RelId a = db.AddRelation("A", 2).ValueOrDie();
  RelId b = db.AddRelation("B", 2).ValueOrDie();
  RelId c = db.AddRelation("C", 2).ValueOrDie();
  auto fill = [&](RelId id, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      db.relation(id).Add(
          {rng.Range(0, domain - 1), rng.Range(0, domain - 1)});
    }
  };
  size_t na = 3 * scale, nb = 2 * scale, nc = 3 * scale;
  fill(a, na);
  fill(b, nb);
  fill(c, nc);
  auto q = ParseConjunctive("ans(x, y) :- B(y, z), C(z, x), A(x, y), x != z.")
               .ValueOrDie();
  RunBench("cyclic_join", db, q, na + nb + nc, reps, threads);
}

void BenchUcqMix(size_t scale, int reps, size_t threads) {
  Rng rng(271828);
  const Value domain = 1500;
  Database db;
  RelId a = db.AddRelation("A", 2).ValueOrDie();
  RelId b = db.AddRelation("B", 2).ValueOrDie();
  RelId c = db.AddRelation("C", 2).ValueOrDie();
  auto fill = [&](RelId id, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      db.relation(id).Add(
          {rng.Range(0, domain - 1), rng.Range(0, domain - 1)});
    }
  };
  fill(a, scale);
  fill(b, scale);
  fill(c, scale);
  auto q = ParsePositive(
               "ans(x) := exists y . exists z . ((A(x, y) and B(y, z)) or "
               "(B(x, y) and C(y, z)) or (A(x, y) and C(y, z)) or "
               "(C(x, y) and A(y, z))).")
               .ValueOrDie();
  RunBench("ucq_mix", db, q, 3 * scale, reps, threads);
}

// abort_latency: arm a deadline a long-running join cannot meet; report how
// far past the deadline the abort surfaced (best over reps). The
// acceptance shape: within one scheduling quantum, i.e. milliseconds, not
// the seconds the full join would take.
void BenchAbortLatency(size_t scale, int reps, size_t threads) {
  Rng rng(161803);
  const Value domain = 500;  // dense: the triangle join goes superlinear
  Database db;
  RelId a = db.AddRelation("A", 2).ValueOrDie();
  RelId b = db.AddRelation("B", 2).ValueOrDie();
  auto fill = [&](RelId id, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      db.relation(id).Add(
          {rng.Range(0, domain - 1), rng.Range(0, domain - 1)});
    }
  };
  fill(a, scale);
  fill(b, scale);
  auto q = ParseConjunctive("ans(x, w) :- A(x, y), B(y, z), A(z, w).")
               .ValueOrDie();
  const uint64_t deadline_ms = 25;
  EngineOptions options;
  options.threads = threads;
  options.use_plan_cache = false;
  options.limits.max_wall_ms = deadline_ms;
  Engine engine(db, options);
  double best_overshoot = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    auto result = engine.Run(q);
    double elapsed = t.Seconds();
    if (result.ok()) {
      std::fprintf(stderr,
                   "FATAL: abort_latency workload finished before its "
                   "deadline; grow the scale\n");
      std::exit(1);
    }
    if (result.status().code() != StatusCode::kDeadlineExceeded) {
      std::fprintf(stderr, "FATAL: abort_latency: unexpected status %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    best_overshoot = std::min(
        best_overshoot,
        std::max(0.0, elapsed - static_cast<double>(deadline_ms) / 1000.0));
  }
  g_entries.push_back(Entry{"abort_latency",
                            "threads" + std::to_string(threads), scale,
                            best_overshoot, 0, 0});
}

void PrintJson() {
  std::printf("[\n");
  for (size_t i = 0; i < g_entries.size(); ++i) {
    const Entry& e = g_entries[i];
    std::printf("  {\"bench\": \"%s\", \"impl\": \"%s\", \"rows\": %zu, "
                "\"seconds\": %.6f, \"output_rows\": %zu, "
                "\"rows_per_sec\": %.0f}%s\n",
                e.bench.c_str(), e.impl.c_str(), e.rows, e.seconds,
                e.output_rows, e.rows_per_sec,
                i + 1 < g_entries.size() ? "," : "");
  }
  std::printf("]\n");
}

}  // namespace
}  // namespace paraquery

int main(int argc, char** argv) {
  bool quick = false;
  size_t threads = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<size_t>(std::strtoul(argv[i + 1], nullptr, 10));
    }
  }
  paraquery::BenchCyclicJoin(quick ? 30000 : 60000, quick ? 5 : 7, 1);
  paraquery::BenchCyclicJoin(quick ? 30000 : 60000, quick ? 5 : 7, threads);
  paraquery::BenchUcqMix(quick ? 150000 : 300000, quick ? 5 : 7, 1);
  paraquery::BenchUcqMix(quick ? 150000 : 300000, quick ? 5 : 7, threads);
  paraquery::BenchAbortLatency(quick ? 200000 : 400000, quick ? 3 : 5,
                               threads);
  paraquery::PrintJson();
  return 0;
}

// E3 — Theorem 2: acyclic conjunctive queries with ≠ are fixed-parameter
// tractable.
//
// The paper's bound is O(g(k) · q · n log n) for the decision problem and
// output-sensitive for evaluation, with g(k) = 2^{O(k log k)}. Series:
//   * NScalingFixedK: time vs n at k fixed — near-linear slope (the
//     parameter is NOT in the exponent of n);
//   * KScalingFixedN: time vs k at n fixed — the exponential lives entirely
//     in the f(k) factor (number of colorings tried);
//   * CrossoverVsNaive: naive backtracking loses quickly as n grows;
//   * OutputSensitiveEvaluation: full answer computation;
//   * EvalLowered: the plan-lowered per-coloring execution (the only path
//     since the hand-rolled oracle's removal; the recorded-answer
//     differential lives in tests/theorem2_recorded.inc).
// Workload: simple-path queries (the paper's Monien / color-coding special
// case) on sparse random graphs, plus the employee-project query.
#include <benchmark/benchmark.h>

#include "eval/inequality.hpp"
#include "eval/naive.hpp"
#include "graph/generators.hpp"
#include "workload/generators.hpp"

namespace paraquery {
namespace {

IneqOptions McOptions(double c = 2.0) {
  IneqOptions o;
  o.driver = IneqOptions::Driver::kMonteCarlo;
  o.mc_error_exponent = c;
  o.seed = 1234;
  return o;
}

void BM_NScalingFixedK(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  // Sparse graph with no simple 4-path guaranteed? We want the WORST case
  // (all colorings tried): use a star forest, which has no simple 3-edge
  // path, so every trial runs to completion.
  Graph g(n);
  for (int i = 1; i < n; ++i) g.AddEdge(i, (i / 50) * 50);  // stars of 50
  Database db = GraphDatabase(g);
  ConjunctiveQuery q = SimplePathQuery(3);
  IneqStats stats;
  for (auto _ : state) {
    auto r = IneqNonempty(db, q, McOptions(), &stats);
    benchmark::DoNotOptimize(r);
    if (!r.ok() || r.value()) state.SkipWithError("unexpected witness");
  }
  state.counters["n"] = n;
  state.counters["k"] = stats.k;
  state.counters["trials"] = static_cast<double>(stats.family_size);
  state.SetComplexityN(n);
}
BENCHMARK(BM_NScalingFixedK)
    ->RangeMultiplier(2)
    ->Range(1000, 16000)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

void BM_KScalingFixedN(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  Graph g(1500);
  for (int i = 1; i < 1500; ++i) g.AddEdge(i, (i / 30) * 30);  // stars of 30
  Database db = GraphDatabase(g);
  ConjunctiveQuery q = SimplePathQuery(k);
  IneqStats stats;
  for (auto _ : state) {
    auto r = IneqNonempty(db, q, McOptions(), &stats);
    benchmark::DoNotOptimize(r);
  }
  state.counters["k"] = stats.k;
  state.counters["colorings"] = static_cast<double>(stats.family_size);
}
BENCHMARK(BM_KScalingFixedN)
    ->DenseRange(2, 6)
    ->Unit(benchmark::kMillisecond);

void BM_NaiveSimplePath(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Graph g(n);
  for (int i = 1; i < n; ++i) g.AddEdge(i, (i / 50) * 50);
  Database db = GraphDatabase(g);
  ConjunctiveQuery q = SimplePathQuery(3);
  for (auto _ : state) {
    auto r = NaiveCqNonempty(db, q);
    benchmark::DoNotOptimize(r);
  }
  state.counters["n"] = n;
  state.SetComplexityN(n);
}
BENCHMARK(BM_NaiveSimplePath)
    ->RangeMultiplier(2)
    ->Range(1000, 4096)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

// The paper's reference point: the trivial algorithm tries all (k+1)-tuples
// of vertices — Θ(n^{k+1}) regardless of structure ("despite considerable
// effort, no algorithm ... without k appearing in the exponent" for the
// general parametric problems; for simple paths, color coding removes the
// exponent and this baseline is what it beats).
void BM_TrivialEnumerationSimplePath(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Graph g(n);
  for (int i = 1; i < n; ++i) g.AddEdge(i, (i / 50) * 50);
  const int k = 3;  // edges; k+1 vertices
  for (auto _ : state) {
    bool found = false;
    std::vector<int> tuple(k + 1);
    // Odometer over ordered (k+1)-tuples.
    std::fill(tuple.begin(), tuple.end(), 0);
    for (;;) {
      bool ok = true;
      for (int i = 0; ok && i <= k; ++i) {
        for (int j = i + 1; ok && j <= k; ++j) {
          if (tuple[i] == tuple[j]) ok = false;
        }
      }
      for (int i = 0; ok && i < k; ++i) {
        if (!g.HasEdge(tuple[i], tuple[i + 1])) ok = false;
      }
      if (ok) {
        found = true;
        break;
      }
      int pos = k;
      while (pos >= 0 && ++tuple[pos] == n) tuple[pos--] = 0;
      if (pos < 0) break;
    }
    benchmark::DoNotOptimize(found);
    if (found) state.SkipWithError("unexpected witness");
  }
  state.counters["n"] = n;
  state.SetComplexityN(n);
}
BENCHMARK(BM_TrivialEnumerationSimplePath)
    ->Arg(40)
    ->Arg(80)
    ->Arg(160)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

void BM_EmployeeProjectFpt(benchmark::State& state) {
  int employees = static_cast<int>(state.range(0));
  Database db = EmployeeProjects(employees, employees / 10, 1, 4, /*seed=*/7);
  ConjunctiveQuery q = MultiProjectQuery();
  for (auto _ : state) {
    auto r = IneqEvaluate(db, q, McOptions(6.0));
    benchmark::DoNotOptimize(r);
  }
  state.counters["employees"] = employees;
  state.SetComplexityN(employees);
}
BENCHMARK(BM_EmployeeProjectFpt)
    ->RangeMultiplier(4)
    ->Range(1000, 64000)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

void BM_EmployeeProjectNaive(benchmark::State& state) {
  int employees = static_cast<int>(state.range(0));
  Database db = EmployeeProjects(employees, employees / 10, 1, 4, /*seed=*/7);
  ConjunctiveQuery q = MultiProjectQuery();
  for (auto _ : state) {
    auto r = NaiveEvaluateCq(db, q);
    benchmark::DoNotOptimize(r);
  }
  state.counters["employees"] = employees;
  state.SetComplexityN(employees);
}
BENCHMARK(BM_EmployeeProjectNaive)
    ->RangeMultiplier(4)
    ->Range(1000, 16000)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

void BM_Theorem2EvalLowered(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Database db = GraphDatabase(GnpRandom(n, 3.0 / n, /*seed=*/21));
  ConjunctiveQuery q = SimplePathQuery(3);
  q.head = {Term::Var(0), Term::Var(3)};
  for (auto _ : state) {
    auto r = IneqEvaluate(db, q, McOptions());
    if (!r.ok()) state.SkipWithError("evaluation failed");
    benchmark::DoNotOptimize(r);
  }
  state.counters["n"] = n;
}
BENCHMARK(BM_Theorem2EvalLowered)
    ->RangeMultiplier(2)
    ->Range(500, 2000)
    ->Unit(benchmark::kMillisecond);

void BM_OutputSensitiveEvaluation(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  // Path-rich graph: many simple paths; output grows with n.
  Database db = GraphDatabase(GnpRandom(n, 3.0 / n, /*seed=*/21));
  ConjunctiveQuery q = SimplePathQuery(3);
  // Return endpoints: ans(x1, x4).
  q.head = {Term::Var(0), Term::Var(3)};
  size_t answers = 0;
  for (auto _ : state) {
    auto r = IneqEvaluate(db, q, McOptions());
    if (!r.ok()) state.SkipWithError("evaluation failed");
    answers = r.value().size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["n"] = n;
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_OutputSensitiveEvaluation)
    ->RangeMultiplier(2)
    ->Range(500, 4000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace paraquery

// E7 — ablations on the design choices the paper's algorithms make.
//
//   a) Monte Carlo error exponent c: the paper's trial count is c·e^k; the
//      failure probability e^-c trades directly against runtime.
//   b) Certified family vs Monte Carlo on a small witness domain: the
//      deterministic driver pays a certification cost but gives exactness.
//   c) Full reducer on/off in Yannakakis evaluation on data with dangling
//      tuples: without the semijoin passes the intermediate joins inflate
//      (the paper's output-sensitivity claim hinges on the reducer).
//   d) Grouped (structure-aware) weighted-2CNF solving vs exhaustive
//      enumeration over C(N, k) assignments.
#include <benchmark/benchmark.h>

#include "circuit/weighted_sat.hpp"
#include "common/rng.hpp"
#include "eval/acyclic.hpp"
#include "eval/inequality.hpp"
#include "graph/generators.hpp"
#include "query/ineq_formula.hpp"
#include "query/parser.hpp"
#include "reductions/clique_to_cq.hpp"
#include "reductions/cq_to_w2cnf.hpp"
#include "workload/generators.hpp"

namespace paraquery {
namespace {

void BM_McErrorExponent(benchmark::State& state) {
  double c = static_cast<double>(state.range(0));
  Database db = RandomBinaryDatabase(2, 1200, 300, /*seed=*/13);
  ConjunctiveQuery q = RandomAcyclicNeqQuery(2, 5, 4, /*seed=*/17);
  IneqOptions opt;
  opt.driver = IneqOptions::Driver::kMonteCarlo;
  opt.mc_error_exponent = c;
  opt.seed = 4242;
  IneqStats stats;
  for (auto _ : state) {
    auto r = IneqEvaluate(db, q, opt, &stats);
    benchmark::DoNotOptimize(r);
    if (!r.ok()) state.SkipWithError("evaluation failed");
  }
  state.counters["c"] = c;
  state.counters["k"] = stats.k;
  state.counters["colorings"] = static_cast<double>(stats.family_size);
}
BENCHMARK(BM_McErrorExponent)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_CertifiedDriver(benchmark::State& state) {
  // Small witness domain: certification is feasible and exact.
  Database db = RandomBinaryDatabase(2, 1200, 40, /*seed=*/13);
  ConjunctiveQuery q = RandomAcyclicNeqQuery(2, 5, 4, /*seed=*/17);
  IneqOptions opt;
  opt.driver = IneqOptions::Driver::kCertified;
  opt.seed = 4242;
  IneqStats stats;
  for (auto _ : state) {
    auto r = IneqEvaluate(db, q, opt, &stats);
    benchmark::DoNotOptimize(r);
    if (!r.ok()) state.SkipWithError(r.status().message().c_str());
  }
  state.counters["k"] = stats.k;
  state.counters["family"] = static_cast<double>(stats.family_size);
}
BENCHMARK(BM_CertifiedDriver)->Unit(benchmark::kMillisecond);

void BM_MonteCarloDriverSmallDomain(benchmark::State& state) {
  Database db = RandomBinaryDatabase(2, 1200, 40, /*seed=*/13);
  ConjunctiveQuery q = RandomAcyclicNeqQuery(2, 5, 4, /*seed=*/17);
  IneqOptions opt;
  opt.driver = IneqOptions::Driver::kMonteCarlo;
  opt.mc_error_exponent = 4.0;
  opt.seed = 4242;
  for (auto _ : state) {
    auto r = IneqEvaluate(db, q, opt);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MonteCarloDriverSmallDomain)->Unit(benchmark::kMillisecond);

// Four-atom chain engineered so that, processed bottom-up, the very first
// join (L1 ⋈ π(L0)) fans out quadratically, while the selective relation
// L3 sits at the other end of the tree. With the full reducer the semijoin
// passes shrink everything to the (tiny) output first; without it the
// intermediate result is ~rows²/100 tuples — the failure mode Algorithm 2's
// two passes exist to prevent.
Database DanglingChainDb(int rows) {
  Database db;
  const Value buckets = 100;
  RelId l0 = db.AddRelation("L0", 2).ValueOrDie();
  RelId l1 = db.AddRelation("L1", 2).ValueOrDie();
  RelId l2 = db.AddRelation("L2", 2).ValueOrDie();
  RelId l3 = db.AddRelation("L3", 2).ValueOrDie();
  for (Value r = 0; r < rows; ++r) {
    db.relation(l0).Add({r, r % buckets});
    // L1 carries only even c values; L2 rows are odd (dead) except ten live
    // chains. Every L2 row fans into rows/100 L3 rows via the d bucket, so
    // the join L2 ⋈ L3 — processed first without the reducer — explodes
    // before the dead c values are discovered at the root.
    db.relation(l1).Add({r % buckets, 2 * r});
    bool live = r < 10;
    db.relation(l2).Add({live ? 2 * r : 2 * r + 1, r % buckets});
    db.relation(l3).Add({r % buckets, r});
  }
  return db;
}

void RunFullReducerBench(benchmark::State& state, bool reducer) {
  int rows = static_cast<int>(state.range(0));
  Database db = DanglingChainDb(rows);
  auto q = ParseConjunctive(
               "ans(e) :- L0(a, b), L1(b, c), L2(c, d), L3(d, e).")
               .ValueOrDie();
  AcyclicOptions opt;
  opt.full_reducer = reducer;
  AcyclicStats stats;
  for (auto _ : state) {
    auto r = AcyclicEvaluate(db, q, opt, &stats);
    benchmark::DoNotOptimize(r);
    if (!r.ok()) state.SkipWithError("evaluation failed");
  }
  state.counters["rows"] = rows;
  state.counters["peak_rows"] = static_cast<double>(stats.peak_intermediate_rows);
}

void BM_FullReducerOn(benchmark::State& state) {
  RunFullReducerBench(state, true);
}
BENCHMARK(BM_FullReducerOn)
    ->RangeMultiplier(4)
    ->Range(1000, 16000)
    ->Unit(benchmark::kMillisecond);

void BM_FullReducerOff(benchmark::State& state) {
  RunFullReducerBench(state, false);
}
BENCHMARK(BM_FullReducerOff)
    ->RangeMultiplier(4)
    ->Range(1000, 16000)
    ->Unit(benchmark::kMillisecond);

// (e) The ∧/∨ inequality-formula extension vs expanding the formula to DNF
// and evaluating each conjunct separately: the formula engine pays one pass
// with hash range #vars + #consts; the DNF route multiplies the work by the
// number of disjuncts.
void BM_IneqFormulaMode(benchmark::State& state) {
  Database db = RandomBinaryDatabase(2, 2000, 200, /*seed=*/23);
  ConjunctiveQuery q = RandomAcyclicNeqQuery(2, 4, 0, /*seed=*/29);
  std::vector<VarId> pool = q.BodyVariables();
  IneqFormula phi;
  std::vector<int> disjuncts;
  for (int d = 0; d < 3; ++d) {
    int a = phi.AddAtom({CompareOp::kNeq, Term::Var(pool[d]),
                         Term::Var(pool[d + 1])});
    int b = phi.AddAtom({CompareOp::kNeq, Term::Var(pool[d]),
                         Term::Var(pool[(d + 2) % pool.size()])});
    disjuncts.push_back(phi.AddAnd({a, b}));
  }
  phi.root = phi.AddOr(std::move(disjuncts));
  IneqOptions mc;
  mc.driver = IneqOptions::Driver::kMonteCarlo;
  mc.mc_error_exponent = 2.0;
  mc.seed = 7;
  IneqStats stats;
  for (auto _ : state) {
    auto r = IneqFormulaEvaluate(db, q, phi, mc, &stats);
    benchmark::DoNotOptimize(r);
    if (!r.ok()) state.SkipWithError("formula evaluation failed");
  }
  state.counters["k"] = stats.k;
  state.counters["colorings"] = static_cast<double>(stats.family_size);
}
BENCHMARK(BM_IneqFormulaMode)->Unit(benchmark::kMillisecond);

void BM_IneqFormulaViaDnf(benchmark::State& state) {
  Database db = RandomBinaryDatabase(2, 2000, 200, /*seed=*/23);
  ConjunctiveQuery q = RandomAcyclicNeqQuery(2, 4, 0, /*seed=*/29);
  std::vector<VarId> pool = q.BodyVariables();
  IneqFormula phi;
  std::vector<int> disjuncts;
  for (int d = 0; d < 3; ++d) {
    int a = phi.AddAtom({CompareOp::kNeq, Term::Var(pool[d]),
                         Term::Var(pool[d + 1])});
    int b = phi.AddAtom({CompareOp::kNeq, Term::Var(pool[d]),
                         Term::Var(pool[(d + 2) % pool.size()])});
    disjuncts.push_back(phi.AddAnd({a, b}));
  }
  phi.root = phi.AddOr(std::move(disjuncts));
  auto dnf = phi.ToDnf().ValueOrDie();
  IneqOptions mc;
  mc.driver = IneqOptions::Driver::kMonteCarlo;
  mc.mc_error_exponent = 2.0;
  mc.seed = 7;
  for (auto _ : state) {
    Relation answers(q.head.size());
    for (const auto& conj : dnf) {
      ConjunctiveQuery variant = q;
      for (const CompareAtom& c : conj) variant.comparisons.push_back(c);
      auto r = IneqEvaluate(db, variant, mc);
      if (!r.ok()) state.SkipWithError("DNF evaluation failed");
      for (size_t row = 0; row < r.value().size(); ++row) {
        answers.Add(r.value().Row(row));
      }
    }
    answers.SortAndDedup();
    benchmark::DoNotOptimize(answers);
  }
  state.counters["disjuncts"] = static_cast<double>(dnf.size());
}
BENCHMARK(BM_IneqFormulaViaDnf)->Unit(benchmark::kMillisecond);

void BM_GroupedW2CnfSolver(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Graph g = TuranGraph(2, n / 2);  // max clique 2: k=3 query is a no
  CliqueToCqResult red = CliqueToCq(g, 3);
  auto inst = CqToW2Cnf(red.db, red.query).ValueOrDie();
  for (auto _ : state) {
    auto sol = SolveGroupedW2Cnf(inst.instance);
    benchmark::DoNotOptimize(sol);
  }
  state.counters["vars"] = inst.instance.num_vars;
}
BENCHMARK(BM_GroupedW2CnfSolver)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_ExhaustiveW2CnfSolver(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Graph g = TuranGraph(2, n / 2);
  CliqueToCqResult red = CliqueToCq(g, 3);
  auto inst = CqToW2Cnf(red.db, red.query).ValueOrDie();
  Cnf cnf = inst.instance.ToCnf();
  for (auto _ : state) {
    auto sol = WeightedCnfSat(cnf, inst.k);
    benchmark::DoNotOptimize(sol);
  }
  state.counters["vars"] = inst.instance.num_vars;
}
// The exhaustive baseline enumerates C(N, k) assignments and evaluates the
// whole CNF on each — keep N tiny or it never returns (that is the point).
BENCHMARK(BM_ExhaustiveW2CnfSolver)
    ->Arg(4)
    ->Arg(6)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace paraquery

// Parallel-runtime benchmark with machine-readable JSON output: the
// cyclic-join + UCQ mix CI gates the ≥2x @ 4-thread speedup on.
//
//   * cyclic_join: a cyclic triangle join with an inequality over one large
//     and two mid-size relations — a large morsel-parallel probe pipeline
//     (hash-join probes, selection, projection over millions of
//     intermediate rows).
//   * ucq_mix: a four-disjunct union of two-atom joins — structural
//     parallelism (disjuncts run as concurrent tasks), each disjunct a
//     Yannakakis plan.
//
// Each bench runs three ways: "sequential" (the evaluators called directly,
// no runtime bound — the PR 3 executor), "threads1" (engine with
// threads = 1), and "threadsN" (engine with the requested width, default
// 4). The binary itself exits nonzero if any impl's answer differs from
// the sequential one — N-thread output must be byte-identical.
//
// Output: a JSON array of
// {"bench", "impl", "rows", "seconds", "output_rows", "rows_per_sec"}.
//
// Usage: bench_parallel [--quick] [--threads N]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/engine.hpp"
#include "eval/naive.hpp"
#include "eval/ucq.hpp"
#include "query/parser.hpp"
#include "relational/database.hpp"

namespace paraquery {
namespace {

struct Entry {
  std::string bench, impl;
  size_t rows = 0;
  double seconds = 0;
  size_t output_rows = 0;
  double rows_per_sec = 0;
};

std::vector<Entry> g_entries;

void ExpectIdentical(const char* bench, const Relation& reference,
                     const Relation& candidate) {
  if (reference.arity() == candidate.arity() &&
      reference.size() == candidate.size() &&
      reference.data() == candidate.data()) {
    return;
  }
  std::fprintf(stderr, "FATAL: %s: output is not byte-identical\n", bench);
  std::exit(1);
}

Engine MakeEngine(const Database& db, size_t threads) {
  EngineOptions options;
  options.threads = threads;
  // This bench compares the RUNTIME against the runtime-free evaluator
  // path, so every rep must pay identical planning work: the plan cache
  // would let the engine impls skip planning that the "sequential"
  // baseline repeats (bench_plan_cache measures that win separately).
  options.use_plan_cache = false;
  return Engine(db, options);
}

// One bench: run a pre-parsed query through the runtime-free evaluators
// ("sequential" — the pre-runtime executor path, no scheduler plumbing at
// all), the engine at threads=1, and the engine at threads=N; assert
// byte-identity of all three answers. Every impl runs the SAME parsed
// query object, so the parity gate compares planning + execution only —
// front-end parsing is outside all three measurements.
template <typename Query, typename SeqFn>
void RunBench(const std::string& bench, const Database& db, const Query& q,
              size_t rows, int reps, size_t threads, SeqFn&& sequential) {
  Engine one = MakeEngine(db, 1);
  Engine wide = MakeEngine(db, threads);
  auto run_t1 = [&] { return std::move(one.Run(q)).ValueOrDie(); };
  auto run_tn = [&] { return std::move(wide.Run(q)).ValueOrDie(); };
  // Warm-up once per impl (also provides the identity-check answers), then
  // interleave the timed reps round-robin so load/frequency drift hits all
  // three impls alike — the 5% parity gate compares best-of times.
  Relation reference = sequential();
  Relation t1 = run_t1();
  Relation tn = run_tn();
  ExpectIdentical(bench.c_str(), reference, t1);
  ExpectIdentical(bench.c_str(), reference, tn);
  double best_seq = 1e300, best_t1 = 1e300, best_tn = 1e300;
  for (int r = 0; r < reps; ++r) {
    {
      Timer t;
      reference = sequential();
      best_seq = std::min(best_seq, t.Seconds());
    }
    {
      Timer t;
      t1 = run_t1();
      best_t1 = std::min(best_t1, t.Seconds());
    }
    {
      Timer t;
      tn = run_tn();
      best_tn = std::min(best_tn, t.Seconds());
    }
  }
  auto push = [&](const std::string& impl, double best, const Relation& out) {
    g_entries.push_back(Entry{bench, impl, rows, best, out.size(),
                              static_cast<double>(rows) / best});
  };
  push("sequential", best_seq, reference);
  push("threads1", best_t1, t1);
  push("threads" + std::to_string(threads), best_tn, tn);
}

// ---------------------------------------------------------------------------
// cyclic_join: triangle with an inequality, large probe-side pipeline.
// ---------------------------------------------------------------------------

void BenchCyclicJoin(size_t scale, int reps, size_t threads) {
  Rng rng(314159);
  const Value domain = 2000;
  Database db;
  RelId a = db.AddRelation("A", 2).ValueOrDie();
  RelId b = db.AddRelation("B", 2).ValueOrDie();
  RelId c = db.AddRelation("C", 2).ValueOrDie();
  auto fill = [&](RelId id, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      db.relation(id).Add(
          {rng.Range(0, domain - 1), rng.Range(0, domain - 1)});
    }
  };
  // Mid-size build sides (sequential index builds stay cheap) feeding a
  // multi-million-row probe/select/probe pipeline (morsel-parallel).
  size_t na = 3 * scale, nb = 2 * scale, nc = 3 * scale;
  fill(a, na);
  fill(b, nb);
  fill(c, nc);
  auto q = ParseConjunctive("ans(x, y) :- B(y, z), C(z, x), A(x, y), x != z.")
               .ValueOrDie();
  RunBench("cyclic_join", db, q, na + nb + nc, reps, threads, [&] {
    return std::move(NaiveEvaluateCq(db, q)).ValueOrDie();
  });
}

// ---------------------------------------------------------------------------
// ucq_mix: four two-atom disjuncts, structurally parallel.
// ---------------------------------------------------------------------------

void BenchUcqMix(size_t scale, int reps, size_t threads) {
  Rng rng(271828);
  const Value domain = 1500;
  Database db;
  RelId a = db.AddRelation("A", 2).ValueOrDie();
  RelId b = db.AddRelation("B", 2).ValueOrDie();
  RelId c = db.AddRelation("C", 2).ValueOrDie();
  auto fill = [&](RelId id, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      db.relation(id).Add(
          {rng.Range(0, domain - 1), rng.Range(0, domain - 1)});
    }
  };
  fill(a, scale);
  fill(b, scale);
  fill(c, scale);
  auto q = ParsePositive(
               "ans(x) := exists y . exists z . ((A(x, y) and B(y, z)) or "
               "(B(x, y) and C(y, z)) or (A(x, y) and C(y, z)) or "
               "(C(x, y) and A(y, z))).")
               .ValueOrDie();
  RunBench("ucq_mix", db, q, 3 * scale, reps, threads, [&] {
    return std::move(EvaluatePositive(db, q)).ValueOrDie();
  });
}

void PrintJson() {
  std::printf("[\n");
  for (size_t i = 0; i < g_entries.size(); ++i) {
    const Entry& e = g_entries[i];
    std::printf("  {\"bench\": \"%s\", \"impl\": \"%s\", \"rows\": %zu, "
                "\"seconds\": %.6f, \"output_rows\": %zu, "
                "\"rows_per_sec\": %.0f}%s\n",
                e.bench.c_str(), e.impl.c_str(), e.rows, e.seconds,
                e.output_rows, e.rows_per_sec,
                i + 1 < g_entries.size() ? "," : "");
  }
  std::printf("]\n");
}

}  // namespace
}  // namespace paraquery

int main(int argc, char** argv) {
  bool quick = false;
  size_t threads = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<size_t>(std::strtoul(argv[i + 1], nullptr, 10));
    }
  }
  paraquery::BenchCyclicJoin(quick ? 30000 : 60000, quick ? 5 : 7, threads);
  paraquery::BenchUcqMix(quick ? 150000 : 300000, quick ? 5 : 7, threads);
  paraquery::PrintJson();
  return 0;
}

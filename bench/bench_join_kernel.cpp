// Join-kernel microbenchmarks with machine-readable JSON output.
//
// Measures rows/sec for the flat RowIndex kernel (NaturalJoin, Semijoin,
// HashDedup, naive-DFS probing) against the seed's unordered_map-based join,
// which is preserved below as `legacy` so every run reports both numbers and
// future perf PRs have a trajectory, plus the vectorized selective
// filter->probe pipeline against the same shape on the row kernels
// (filter_probe; CI gates vectorized >= 2x). Output is a single JSON array;
// each entry is
// {"bench", "impl", "rows", "seconds", "output_rows", "rows_per_sec"}.
//
// Usage: bench_join_kernel [--quick]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "eval/naive.hpp"
#include "plan/executor.hpp"
#include "plan/plan.hpp"
#include "query/builder.hpp"
#include "relational/database.hpp"
#include "relational/ops.hpp"
#include "relational/predicate.hpp"
#include "relational/row_index.hpp"

namespace paraquery {
namespace {

// ---------------------------------------------------------------------------
// Legacy kernel: the seed's per-key-vector unordered_map join, preserved in
// structure (hash -> vector<row>, key re-verified on every probe candidate).
// ---------------------------------------------------------------------------

uint64_t LegacyHashKey(const Relation& rel, size_t row,
                       const std::vector<int>& cols) {
  uint64_t h = 0x243f6a8885a308d3ull;
  for (int c : cols) h = (h ^ HashValue(rel.At(row, c))) * 0x100000001b3ull;
  return h;
}

bool LegacyKeysEqual(const Relation& a, size_t ra, const std::vector<int>& ca,
                     const Relation& b, size_t rb, const std::vector<int>& cb) {
  for (size_t i = 0; i < ca.size(); ++i) {
    if (a.At(ra, ca[i]) != b.At(rb, cb[i])) return false;
  }
  return true;
}

std::unordered_map<uint64_t, std::vector<uint32_t>> LegacyBuildIndex(
    const Relation& rel, const std::vector<int>& cols) {
  std::unordered_map<uint64_t, std::vector<uint32_t>> index;
  index.reserve(rel.size() * 2);
  for (size_t r = 0; r < rel.size(); ++r) {
    index[LegacyHashKey(rel, r, cols)].push_back(static_cast<uint32_t>(r));
  }
  return index;
}

NamedRelation LegacyNaturalJoin(const NamedRelation& left,
                                const NamedRelation& right) {
  std::vector<int> lcols, rcols;
  for (size_t i = 0; i < left.attrs().size(); ++i) {
    int rc = right.ColumnOf(left.attrs()[i]);
    if (rc >= 0) {
      lcols.push_back(static_cast<int>(i));
      rcols.push_back(rc);
    }
  }
  std::vector<AttrId> out_attrs = left.attrs();
  std::vector<int> right_extra;
  for (size_t i = 0; i < right.attrs().size(); ++i) {
    if (!left.HasAttr(right.attrs()[i])) {
      out_attrs.push_back(right.attrs()[i]);
      right_extra.push_back(static_cast<int>(i));
    }
  }
  NamedRelation out{out_attrs};
  auto index = LegacyBuildIndex(right.rel(), rcols);
  ValueVec row(out_attrs.size());
  for (size_t lr = 0; lr < left.size(); ++lr) {
    auto it = index.find(LegacyHashKey(left.rel(), lr, lcols));
    if (it == index.end()) continue;
    for (uint32_t rr : it->second) {
      if (!LegacyKeysEqual(left.rel(), lr, lcols, right.rel(), rr, rcols)) {
        continue;
      }
      for (size_t i = 0; i < left.arity(); ++i) row[i] = left.rel().At(lr, i);
      for (size_t i = 0; i < right_extra.size(); ++i) {
        row[left.arity() + i] = right.rel().At(rr, right_extra[i]);
      }
      out.rel().Add(row);
    }
  }
  return out;
}

NamedRelation LegacySemijoin(const NamedRelation& left,
                             const NamedRelation& right) {
  std::vector<int> lcols, rcols;
  for (size_t i = 0; i < left.attrs().size(); ++i) {
    int rc = right.ColumnOf(left.attrs()[i]);
    if (rc >= 0) {
      lcols.push_back(static_cast<int>(i));
      rcols.push_back(rc);
    }
  }
  NamedRelation out{left.attrs()};
  auto index = LegacyBuildIndex(right.rel(), rcols);
  for (size_t lr = 0; lr < left.size(); ++lr) {
    auto it = index.find(LegacyHashKey(left.rel(), lr, lcols));
    if (it == index.end()) continue;
    bool matched = false;
    for (uint32_t rr : it->second) {
      if (LegacyKeysEqual(left.rel(), lr, lcols, right.rel(), rr, rcols)) {
        matched = true;
        break;
      }
    }
    if (matched) out.rel().Add(left.rel().Row(lr));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

struct Entry {
  std::string bench;
  std::string impl;
  size_t rows;
  double seconds;
  size_t output_rows;
  double rows_per_sec;
};

std::vector<Entry> g_entries;

// Times fn() (returning its output-row count) over `reps` runs, keeping the
// best wall time; throughput is input rows processed per second.
template <typename Fn>
void Measure(const std::string& bench, const std::string& impl, size_t rows,
             int reps, Fn fn) {
  double best = 1e100;
  size_t out_rows = 0;
  for (int i = 0; i < reps; ++i) {
    Timer t;
    out_rows = fn();
    best = std::min(best, t.Seconds());
  }
  g_entries.push_back(
      Entry{bench, impl, rows, best, out_rows,
            best > 0 ? static_cast<double>(rows) / best : 0.0});
}

NamedRelation RandomRel(Rng& rng, std::vector<AttrId> attrs, size_t rows,
                        int64_t domain) {
  NamedRelation rel(std::move(attrs));
  rel.rel().Reserve(rows);
  ValueVec row(rel.attrs().size());
  for (size_t i = 0; i < rows; ++i) {
    for (auto& v : row) v = rng.Range(0, domain - 1);
    rel.rel().Add(row);
  }
  return rel;
}

void BenchJoin(size_t n, int reps) {
  Rng rng(7);
  // Keys drawn from n/4 values: ~4 matches per probe, join output ~4n rows.
  int64_t dom = std::max<int64_t>(1, static_cast<int64_t>(n) / 4);
  NamedRelation left = RandomRel(rng, {0, 1}, n, dom);
  NamedRelation right = RandomRel(rng, {1, 2}, n, dom);

  NamedRelation legacy_out, flat_out;
  Measure("join", "legacy_unordered_map", n, reps, [&] {
    legacy_out = LegacyNaturalJoin(left, right);
    return legacy_out.size();
  });
  Measure("join", "row_index", n, reps, [&] {
    flat_out = NaturalJoin(left, right).ValueOrDie();
    return flat_out.size();
  });
  if (!legacy_out.rel().EqualsAsSet(flat_out.rel())) {
    std::fprintf(stderr, "FATAL: join kernels disagree at n=%zu\n", n);
    std::exit(1);
  }

  Measure("semijoin", "legacy_unordered_map", n, reps,
          [&] { return LegacySemijoin(left, right).size(); });
  Measure("semijoin", "row_index", n, reps,
          [&] { return Semijoin(left, right).size(); });
}

void BenchDedup(size_t n, int reps) {
  Rng rng(11);
  // Dense domain: roughly half the rows are duplicates.
  NamedRelation rel = RandomRel(rng, {0, 1}, n,
                                std::max<int64_t>(1, (int64_t)n / 8));
  Measure("dedup", "sort_and_dedup", n, reps, [&] {
    Relation copy = rel.rel();
    copy.SortAndDedup();
    return copy.size();
  });
  Measure("dedup", "hash_dedup", n, reps, [&] {
    Relation copy = rel.rel();
    copy.HashDedup();
    return copy.size();
  });
}

void BenchNaiveDfs(size_t n, int reps) {
  // Path query path(x,w) :- E(x,y), E(y,z), E(z,w) on a random sparse graph:
  // the DFS probes a per-atom index at every level.
  Rng rng(13);
  int64_t nodes = std::max<int64_t>(2, static_cast<int64_t>(n) / 4);
  Database db;
  RelId e = db.AddRelation("E", 2).ValueOrDie();
  ValueVec row(2);
  for (size_t i = 0; i < n; ++i) {
    row[0] = rng.Range(0, nodes - 1);
    row[1] = rng.Range(0, nodes - 1);
    db.relation(e).Add(row);
  }
  CqBuilder qb;
  auto x = qb.Var("x"), y = qb.Var("y"), z = qb.Var("z"), w = qb.Var("w");
  ConjunctiveQuery q = qb.Head({x, w})
                          .Atom("E", {x, y})
                          .Atom("E", {y, z})
                          .Atom("E", {z, w})
                          .Build()
                          .ValueOrDie();
  // BacktrackEvaluateCq IS the indexed DFS; NaiveEvaluateCq now routes
  // through the plan executor and is benchmarked in bench_planner.
  Measure("naive_dfs", "row_index", n, reps, [&] {
    return BacktrackEvaluateCq(db, q).ValueOrDie().size();
  });
}

void BenchFilterProbe(size_t n, int reps) {
  // A selective filter feeding a key join — the vectorized pipeline's home
  // turf. Both impls run the same plan shape on the same inputs:
  //   row_kernels: Select(left, col0 < 30) then NaturalJoin against right,
  //     row-at-a-time (the filter copies every surviving 4-wide row before
  //     the probe sees it);
  //   vectorized: Materialize -> HashJoin -> Select -> Scan through the plan
  //     executor — the filter emits a selection vector over the cached
  //     columnar mirror and the probe gathers only the ~3% survivors.
  Rng rng(17);
  const size_t left_rows = n * 4;
  const size_t right_rows = std::max<size_t>(512, n / 64);
  NamedRelation left({0, 1, 2, 3});
  left.rel().Reserve(left_rows);
  ValueVec row(4);
  for (size_t i = 0; i < left_rows; ++i) {
    row[0] = rng.Range(0, 999);  // filter column: < 30 keeps ~3%
    row[1] = rng.Range(0, 999);
    row[2] = rng.Range(0, 999);
    row[3] = rng.Range(0, static_cast<int64_t>(right_rows) - 1);  // join key
    left.rel().Add(row);
  }
  NamedRelation right = RandomRel(rng, {3, 4}, right_rows,
                                  static_cast<int64_t>(right_rows));
  Predicate pred;
  pred.Add(Constraint::LtConst(0, 30));

  NamedRelation row_out;
  Measure("filter_probe", "row_kernels", left_rows, reps, [&] {
    row_out = NaturalJoin(Select(left, pred), right).ValueOrDie();
    return row_out.size();
  });

  // The same shape as the planner would emit for the vec-eligible chain; the
  // cached ColumnarView amortizes across reps exactly like a cached plan's
  // repeated executions over unchanged storage.
  PlanNodePtr plan = MakeMaterialize(MakeHashJoin(
      MakeSelect(MakeScan(0, left.attrs(), "L",
                          static_cast<double>(left_rows)),
                 pred),
      MakeScan(1, right.attrs(), "R", static_cast<double>(right_rows))));
  const NamedRelation* slots[] = {&left, &right};
  ExecContext ctx;
  ctx.inputs = slots;
  NamedRelation vec_out;
  Measure("filter_probe", "vectorized", left_rows, reps, [&] {
    plan->ResetActuals();
    vec_out = ExecutePlan(*plan, ctx).ValueOrDie();
    return vec_out.size();
  });
  if (!row_out.rel().EqualsAsSet(vec_out.rel())) {
    std::fprintf(stderr, "FATAL: filter_probe impls disagree at n=%zu\n", n);
    std::exit(1);
  }
}

void RunAll(size_t n, int reps) {
  BenchJoin(n, reps);
  BenchDedup(n, reps);
  BenchFilterProbe(n, reps);
  // The path query's output is ~16x the edge count; scale the DFS input down
  // so the benchmark stays memory-bounded at the largest scale.
  BenchNaiveDfs(n / 10, reps);
}

void PrintJson() {
  std::printf("[\n");
  for (size_t i = 0; i < g_entries.size(); ++i) {
    const Entry& e = g_entries[i];
    std::printf("  {\"bench\": \"%s\", \"impl\": \"%s\", \"rows\": %zu, "
                "\"seconds\": %.6f, \"output_rows\": %zu, "
                "\"rows_per_sec\": %.0f}%s\n",
                e.bench.c_str(), e.impl.c_str(), e.rows, e.seconds,
                e.output_rows, e.rows_per_sec,
                i + 1 < g_entries.size() ? "," : "");
  }
  std::printf("]\n");
}

}  // namespace
}  // namespace paraquery

int main(int argc, char** argv) {
  bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  std::vector<size_t> scales =
      quick ? std::vector<size_t>{10000}
            : std::vector<size_t>{10000, 100000, 1000000};
  for (size_t n : scales) {
    paraquery::RunAll(n, n >= 1000000 ? 3 : 5);
  }
  paraquery::PrintJson();
  return 0;
}

// Planner benchmarks with machine-readable JSON output.
//
//   * cyclic_order: a 4-atom cyclic query whose textual atom order starts
//     with two disconnected atoms. The seed-order baseline (reorder=false,
//     i.e. the pre-planner behavior of joining atoms as written) pays the
//     cross product; the greedy planned order never does. CI fails if the
//     planned execution is not at least as fast as the seed order.
//   * acyclic_parity: Yannakakis-vs-plan parity on an acyclic chain over
//     data with dangling tuples — the planned execution must produce the
//     same answers with the same semijoin/join schedule (counts asserted
//     here; mismatch exits nonzero), at comparable speed.
//
// Output is a single JSON array; each entry is
// {"bench", "impl", "rows", "seconds", "output_rows", "rows_per_sec"}.
//
// Usage: bench_planner [--quick]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "eval/acyclic.hpp"
#include "eval/common.hpp"
#include "hypergraph/join_tree.hpp"
#include "plan/executor.hpp"
#include "plan/planner.hpp"
#include "query/parser.hpp"
#include "relational/database.hpp"
#include "relational/ops.hpp"

namespace paraquery {
namespace {

struct Entry {
  std::string bench, impl;
  size_t rows = 0;
  double seconds = 0;
  size_t output_rows = 0;
  double rows_per_sec = 0;
};

std::vector<Entry> g_entries;

template <typename Fn>
void Measure(const std::string& bench, const std::string& impl, size_t rows,
             int reps, Fn&& fn) {
  // Warm-up run (also provides output_rows).
  size_t output_rows = fn();
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    output_rows = fn();
    best = std::min(best, t.Seconds());
  }
  g_entries.push_back(Entry{bench, impl, rows, best, output_rows,
                            static_cast<double>(rows) / best});
}

// ---------------------------------------------------------------------------
// cyclic_order: planned greedy order vs the query's textual atom order.
// ---------------------------------------------------------------------------

void BenchCyclicOrder(size_t scale, int reps) {
  // A and B are disconnected from each other; E and F close the cycle.
  // Textual order A, B, ... forces an |A|·|B| cross product up front.
  Rng rng(271828);
  const Value domain = 200;
  Database db;
  RelId a = db.AddRelation("A", 2).ValueOrDie();
  RelId b = db.AddRelation("B", 2).ValueOrDie();
  RelId e = db.AddRelation("E", 2).ValueOrDie();
  RelId f = db.AddRelation("F", 2).ValueOrDie();
  size_t small = scale, large = 2 * scale;
  auto fill = [&](RelId id, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      db.relation(id).Add({rng.Range(0, domain - 1), rng.Range(0, domain - 1)});
    }
  };
  fill(a, small);
  fill(b, small);
  fill(e, large);
  fill(f, large);
  size_t total_rows = 2 * small + 2 * large;
  auto q = ParseConjunctive("ans(x, w) :- A(x, y), B(z, w), E(y, z), F(w, x).")
               .ValueOrDie();

  size_t planned_rows = 0, seed_rows = 0;
  Measure("cyclic_order", "planned", total_rows, reps, [&] {
    PhysicalPlan plan = PlanCyclicCq(db, q).ValueOrDie();
    NamedRelation bindings = ExecutePhysicalPlan(plan, {}).ValueOrDie();
    planned_rows = BindingsToAnswers(bindings, q.head).size();
    return planned_rows;
  });
  Measure("cyclic_order", "seed_order", total_rows, reps, [&] {
    PlannerOptions seed;
    seed.reorder = false;
    PhysicalPlan plan = PlanCyclicCq(db, q, seed).ValueOrDie();
    NamedRelation bindings = ExecutePhysicalPlan(plan, {}).ValueOrDie();
    seed_rows = BindingsToAnswers(bindings, q.head).size();
    return seed_rows;
  });
  if (planned_rows != seed_rows) {
    std::fprintf(stderr, "FATAL: cyclic_order answers disagree (%zu vs %zu)\n",
                 planned_rows, seed_rows);
    std::exit(1);
  }
}

// ---------------------------------------------------------------------------
// acyclic_parity: the legacy (pre-plan) Yannakakis schedule vs the plan.
// ---------------------------------------------------------------------------

struct LegacyStats {
  size_t semijoins = 0;
  size_t joins = 0;
};

Relation LegacyYannakakis(const Database& db, const ConjunctiveQuery& q,
                          LegacyStats* stats) {
  std::vector<NamedRelation> rels;
  for (const Atom& atom : q.body) {
    RelId id = db.FindRelation(atom.relation).ValueOrDie();
    rels.push_back(AtomToRelation(db.relation(id), atom).ValueOrDie());
  }
  JoinTree tree = BuildJoinTree(q.BuildHypergraph()).ValueOrDie();
  Relation empty(q.head.size());
  for (const NamedRelation& rel : rels) {
    if (rel.empty()) return empty;
  }
  for (int j : tree.bottom_up) {
    int u = tree.parent[j];
    if (u < 0) continue;
    rels[u] = Semijoin(rels[u], rels[j]);
    ++stats->semijoins;
    if (rels[u].empty()) return empty;
  }
  for (int j : tree.top_down) {
    int u = tree.parent[j];
    if (u < 0) continue;
    rels[j] = Semijoin(rels[j], rels[u]);
    ++stats->semijoins;
  }
  std::vector<VarId> head_vars = q.HeadVariables();
  auto is_head = [&head_vars](AttrId a) {
    return std::find(head_vars.begin(), head_vars.end(), a) !=
           head_vars.end();
  };
  std::vector<std::vector<AttrId>> subtree_head(tree.size());
  for (int j : tree.bottom_up) {
    std::vector<AttrId> acc;
    for (AttrId a : rels[j].attrs()) {
      if (is_head(a)) acc.push_back(a);
    }
    for (int c : tree.children[j]) {
      for (AttrId a : subtree_head[c]) acc.push_back(a);
    }
    std::sort(acc.begin(), acc.end());
    acc.erase(std::unique(acc.begin(), acc.end()), acc.end());
    subtree_head[j] = std::move(acc);
  }
  for (int j : tree.bottom_up) {
    int u = tree.parent[j];
    if (u < 0) continue;
    std::vector<AttrId> zj;
    for (AttrId a : rels[j].attrs()) {
      if (rels[u].HasAttr(a)) zj.push_back(a);
    }
    for (AttrId a : subtree_head[j]) {
      if (std::find(zj.begin(), zj.end(), a) == zj.end()) zj.push_back(a);
    }
    rels[u] = NaturalJoin(rels[u], Project(rels[j], zj)).ValueOrDie();
    ++stats->joins;
    if (rels[u].empty()) return empty;
  }
  return BindingsToAnswers(Project(rels[tree.root], head_vars), q.head);
}

// The dangling-chain data of bench_ablations: most tuples die in the
// semijoin passes, which is exactly what the plan must reproduce.
Database DanglingChainDb(size_t rows) {
  Database db;
  const Value buckets = 100;
  RelId l0 = db.AddRelation("L0", 2).ValueOrDie();
  RelId l1 = db.AddRelation("L1", 2).ValueOrDie();
  RelId l2 = db.AddRelation("L2", 2).ValueOrDie();
  RelId l3 = db.AddRelation("L3", 2).ValueOrDie();
  for (Value r = 0; r < static_cast<Value>(rows); ++r) {
    db.relation(l0).Add({r, r % buckets});
    db.relation(l1).Add({r % buckets, 2 * r});
    bool live = r < 10;
    db.relation(l2).Add({live ? 2 * r : 2 * r + 1, r % buckets});
    db.relation(l3).Add({r % buckets, r});
  }
  return db;
}

void BenchAcyclicParity(size_t rows, int reps) {
  Database db = DanglingChainDb(rows);
  auto q = ParseConjunctive(
               "ans(e) :- L0(a, b), L1(b, c), L2(c, d), L3(d, e).")
               .ValueOrDie();
  Relation legacy_out(1), planned_out(1);
  LegacyStats legacy;
  Measure("acyclic_parity", "legacy_yannakakis", 4 * rows, reps, [&] {
    legacy = LegacyStats{};
    legacy_out = LegacyYannakakis(db, q, &legacy);
    return legacy_out.size();
  });
  PlanStats plan_stats;
  Measure("acyclic_parity", "planned", 4 * rows, reps, [&] {
    plan_stats = PlanStats{};
    planned_out = AcyclicEvaluate(db, q, {}, nullptr, &plan_stats).ValueOrDie();
    return planned_out.size();
  });
  if (!legacy_out.EqualsAsSet(planned_out)) {
    std::fprintf(stderr, "FATAL: acyclic_parity answers disagree\n");
    std::exit(1);
  }
  if (plan_stats.semijoins != legacy.semijoins ||
      plan_stats.joins != legacy.joins) {
    std::fprintf(stderr,
                 "FATAL: acyclic_parity schedule mismatch: plan %zu/%zu vs "
                 "legacy %zu/%zu semijoins/joins\n",
                 plan_stats.semijoins, plan_stats.joins, legacy.semijoins,
                 legacy.joins);
    std::exit(1);
  }
}

void PrintJson() {
  std::printf("[\n");
  for (size_t i = 0; i < g_entries.size(); ++i) {
    const Entry& e = g_entries[i];
    std::printf("  {\"bench\": \"%s\", \"impl\": \"%s\", \"rows\": %zu, "
                "\"seconds\": %.6f, \"output_rows\": %zu, "
                "\"rows_per_sec\": %.0f}%s\n",
                e.bench.c_str(), e.impl.c_str(), e.rows, e.seconds,
                e.output_rows, e.rows_per_sec,
                i + 1 < g_entries.size() ? "," : "");
  }
  std::printf("]\n");
}

}  // namespace
}  // namespace paraquery

int main(int argc, char** argv) {
  bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  paraquery::BenchCyclicOrder(quick ? 600 : 1200, quick ? 3 : 5);
  paraquery::BenchAcyclicParity(quick ? 8000 : 16000, quick ? 3 : 5);
  paraquery::PrintJson();
  return 0;
}

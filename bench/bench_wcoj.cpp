// Worst-case-optimal join benchmark with machine-readable JSON output: CI
// gates the SCALING EXPONENT, not a constant speedup — doubling the input
// must grow binary-join time ~4x (any pairwise join of the cyclic atoms
// goes through the hub: Theta(k^2) intermediate) while the leapfrog
// multiway path grows ~2x (near-linear in input + output on this family).
//
// The instance is the classic bad case for binary plans: a star with a
// ring. Hub 0 is connected to k leaves in both directions, and ring edges
// i -> i+1 close ~k directed triangles (0, i, i+1). Every pairwise join of
// two triangle atoms produces the k^2 leaf-hub-leaf paths before the third
// atom can prune them; the AGM bound for the triangle is m^1.5, and the
// leapfrog intersection never materializes the quadratic intermediate.
//
//   * triangle  : ans(x,y,z) :- E(x,y), E(y,z), E(z,x).       [gated]
//   * four_clique: directed 4-clique over the same E.          [reported]
//   * tri_tail  : triangle core + acyclic tail T(z,t) — the hypertree
//     planner runs Yannakakis over two bags with leapfrog inside the
//     cyclic one.                                              [reported]
//
// Each bench runs "binary" (EngineOptions::wcoj = false, the left-deep
// hash-join chains) against "wcoj" at two scales. The binary itself exits
// nonzero if answers diverge anywhere (user-facing answers are sorted, so
// byte-identity is required), if the wcoj engine did not actually execute
// a MultiwayJoin operator, or if the binary engine did.
//
// Output: a JSON array of
// {"bench", "impl", "rows", "seconds", "output_rows", "rows_per_sec"}.
//
// Usage: bench_wcoj [--quick] [--threads N]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "core/engine.hpp"
#include "query/parser.hpp"
#include "relational/database.hpp"

namespace paraquery {
namespace {

struct Entry {
  std::string bench, impl;
  size_t rows = 0;
  double seconds = 0;
  size_t output_rows = 0;
  double rows_per_sec = 0;
};

std::vector<Entry> g_entries;

void ExpectIdentical(const char* bench, const Relation& reference,
                     const Relation& candidate) {
  if (reference.arity() == candidate.arity() &&
      reference.size() == candidate.size() &&
      reference.data() == candidate.data()) {
    return;
  }
  std::fprintf(stderr, "FATAL: %s: wcoj answer is not byte-identical\n",
               bench);
  std::exit(1);
}

Engine MakeEngine(const Database& db, bool wcoj, size_t threads) {
  EngineOptions options;
  options.threads = threads;
  options.wcoj = wcoj;
  // Plan every run: the scaling measurement is execution, and the bench
  // relies on the query's textual atom order reaching the planner intact.
  options.use_plan_cache = false;
  return Engine(db, options);
}

// Star-with-ring: hub 0 <-> leaves 1..k (both directions) plus ring edges
// i -> i+1, giving ~k directed triangles through the hub. Optionally a tail
// relation T fanning every leaf into a small value set.
Database StarWithRing(size_t k, bool with_tail) {
  Database db;
  RelId e = db.AddRelation("E", 2).ValueOrDie();
  Relation& edges = db.relation(e);
  for (size_t i = 1; i <= k; ++i) {
    Value leaf = static_cast<Value>(i);
    edges.Add({0, leaf});
    edges.Add({leaf, 0});
    if (i < k) edges.Add({leaf, static_cast<Value>(i + 1)});
  }
  if (with_tail) {
    RelId t = db.AddRelation("T", 2).ValueOrDie();
    Relation& tail = db.relation(t);
    for (size_t i = 1; i <= k; ++i) {
      tail.Add({static_cast<Value>(i), static_cast<Value>(k + 1 + i % 16)});
    }
  }
  return db;
}

// One (bench, scale) cell: the same query through a binary-only engine and
// a wcoj engine; answers must be byte-identical, and the plan statistics
// must show the multiway operator ran exactly on the wcoj side.
void RunCell(const std::string& bench, const Database& db,
             const ConjunctiveQuery& q, int reps, size_t threads) {
  Engine binary = MakeEngine(db, /*wcoj=*/false, threads);
  Engine wcoj = MakeEngine(db, /*wcoj=*/true, threads);
  size_t rows = 0;
  for (size_t r = 0; r < db.relation_count(); ++r) {
    rows += db.relation(static_cast<RelId>(r)).size();
  }
  Relation reference = std::move(binary.Run(q)).ValueOrDie();
  if (binary.last_stats().plan.multiway_joins != 0) {
    std::fprintf(stderr, "FATAL: %s: binary engine ran a MultiwayJoin\n",
                 bench.c_str());
    std::exit(1);
  }
  Relation candidate = std::move(wcoj.Run(q)).ValueOrDie();
  if (wcoj.last_stats().plan.multiway_joins == 0) {
    std::fprintf(stderr, "FATAL: %s: wcoj engine never ran a MultiwayJoin\n",
                 bench.c_str());
    std::exit(1);
  }
  ExpectIdentical(bench.c_str(), reference, candidate);
  double best_binary = 1e300, best_wcoj = 1e300;
  for (int r = 0; r < reps; ++r) {
    {
      Timer t;
      reference = std::move(binary.Run(q)).ValueOrDie();
      best_binary = std::min(best_binary, t.Seconds());
    }
    {
      Timer t;
      candidate = std::move(wcoj.Run(q)).ValueOrDie();
      best_wcoj = std::min(best_wcoj, t.Seconds());
    }
  }
  auto push = [&](const std::string& impl, double best, const Relation& out) {
    g_entries.push_back(Entry{bench, impl, rows, best, out.size(),
                              static_cast<double>(rows) / best});
  };
  push("binary", best_binary, reference);
  push("wcoj", best_wcoj, candidate);
}

void BenchTriangle(size_t k, int reps, size_t threads) {
  Database db = StarWithRing(k, /*with_tail=*/false);
  auto q = ParseConjunctive("ans(x, y, z) :- E(x, y), E(y, z), E(z, x).")
               .ValueOrDie();
  RunCell("triangle_t" + std::to_string(threads), db, q, reps, threads);
}

// Atom order matters to the binary baseline: with E(x, y) third, the greedy
// bound-variable order closes the (w,x,y) triangle before touching z, so
// the binary intermediates stay Theta(k^2) rather than k^3 — the gate
// compares against the best reasonable binary plan, not a strawman.
void BenchFourClique(size_t k, int reps, size_t threads) {
  Database db = StarWithRing(k, /*with_tail=*/false);
  auto q = ParseConjunctive(
               "ans(w, x, y, z) :- E(w, x), E(w, y), E(x, y), E(w, z), "
               "E(x, z), E(y, z).")
               .ValueOrDie();
  RunCell("four_clique_t" + std::to_string(threads), db, q, reps, threads);
}

void BenchTriangleTail(size_t k, int reps, size_t threads) {
  Database db = StarWithRing(k, /*with_tail=*/true);
  auto q = ParseConjunctive(
               "ans(x, t) :- E(x, y), E(y, z), E(z, x), T(z, t).")
               .ValueOrDie();
  RunCell("tri_tail_t" + std::to_string(threads), db, q, reps, threads);
}

void PrintJson() {
  std::printf("[\n");
  for (size_t i = 0; i < g_entries.size(); ++i) {
    const Entry& e = g_entries[i];
    std::printf("  {\"bench\": \"%s\", \"impl\": \"%s\", \"rows\": %zu, "
                "\"seconds\": %.6f, \"output_rows\": %zu, "
                "\"rows_per_sec\": %.0f}%s\n",
                e.bench.c_str(), e.impl.c_str(), e.rows, e.seconds,
                e.output_rows, e.rows_per_sec,
                i + 1 < g_entries.size() ? "," : "");
  }
  std::printf("]\n");
}

}  // namespace
}  // namespace paraquery

int main(int argc, char** argv) {
  bool quick = false;
  size_t threads = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<size_t>(std::strtoul(argv[i + 1], nullptr, 10));
    }
  }
  // Two scales per bench, a factor of 2 apart: the CI gate compares the
  // growth RATIO of each impl, so both cells of a pair must run in the
  // same process on the same machine.
  const size_t tri = quick ? 1500 : 2000;
  const int reps = quick ? 5 : 7;
  paraquery::BenchTriangle(tri, reps, 1);
  paraquery::BenchTriangle(tri * 2, reps, 1);
  paraquery::BenchFourClique(quick ? 800 : 1200, reps, 1);
  paraquery::BenchFourClique((quick ? 800 : 1200) * 2, reps, 1);
  paraquery::BenchTriangleTail(tri, reps, 1);
  paraquery::BenchTriangleTail(tri * 2, reps, 1);
  // One parallel cell: exercises the morsel-partitioned leapfrog path and
  // its byte-identity against both the binary plan and threads=1.
  paraquery::BenchTriangle(tri * 2, reps, threads);
  paraquery::PrintJson();
  return 0;
}

// Plan-cache benchmarks with machine-readable JSON output.
//
//   * repeated_cq: a repeated-query workload (8 distinct selective CQs run
//     round-robin) evaluated cold — a fresh Engine per pass, so every query
//     pays S_j materialization + planning — vs warm — one Engine whose plan
//     cache serves every repeat. CI gates warm >= 3x cold throughput.
//   * theorem2: the Theorem 2 color-coding engine, lowered per-coloring
//     plan execution vs the hand-rolled oracle on the same family. The
//     binary exits nonzero if the answers disagree or if a warm engine run
//     reports zero plan_cache hits (the k^k-colorings headline); CI gates
//     lowered wall-clock <= 1.15x the oracle's (it is usually at parity or
//     faster — one compiled plan per family, filters pushed into joins).
//
// Output is a single JSON array; each entry is
// {"bench", "impl", "rows", "seconds", "output_rows", "rows_per_sec"}.
//
// Usage: bench_plan_cache [--quick]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/engine.hpp"
#include "eval/inequality.hpp"
#include "graph/generators.hpp"
#include "query/parser.hpp"
#include "relational/database.hpp"

namespace paraquery {
namespace {

struct Entry {
  std::string bench, impl;
  size_t rows = 0;
  double seconds = 0;
  size_t output_rows = 0;
  double rows_per_sec = 0;
};

std::vector<Entry> g_entries;

template <typename Fn>
void Measure(const std::string& bench, const std::string& impl, size_t rows,
             int reps, Fn&& fn) {
  size_t output_rows = fn();  // warm-up (also provides output_rows)
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    output_rows = fn();
    best = std::min(best, t.Seconds());
  }
  g_entries.push_back(Entry{bench, impl, rows, best, output_rows,
                            static_cast<double>(rows) / best});
}

// ---------------------------------------------------------------------------
// repeated_cq: cold per-query planning vs the warm cache.
// ---------------------------------------------------------------------------

void BenchRepeatedCq(size_t scale, int reps) {
  // R(k, x): `scale` rows over 1000 keys — the constant-selected S_j is
  // ~scale/1000 rows, so planning (which scans R to materialize it) costs
  // ~scale while execution costs ~|S_j|. T links the survivors.
  Rng rng(424242);
  Database db;
  RelId r = db.AddRelation("R", 2).ValueOrDie();
  RelId t = db.AddRelation("T", 2).ValueOrDie();
  for (size_t i = 0; i < scale; ++i) {
    db.relation(r).Add({rng.Range(0, 999), rng.Range(0, 499)});
  }
  for (size_t i = 0; i < scale / 25; ++i) {
    db.relation(t).Add({rng.Range(0, 499), rng.Range(0, 499)});
  }
  std::vector<ConjunctiveQuery> queries;
  for (int c = 0; c < 8; ++c) {
    std::string text = "ans(x, y) :- R(" + std::to_string(c * 100) +
                       ", x), T(x, y), R(" + std::to_string(c * 100 + 7) +
                       ", y).";
    queries.push_back(ParseConjunctive(text).ValueOrDie());
  }
  size_t total_rows = (scale + scale / 25) * queries.size();

  size_t cold_rows = 0, warm_rows = 0;
  Measure("repeated_cq", "cold_per_query", total_rows, reps, [&] {
    size_t out = 0;
    for (const ConjunctiveQuery& q : queries) {
      Engine fresh(db);  // empty cache: full S_j + planning cost per query
      out += fresh.Run(q).ValueOrDie().size();
    }
    cold_rows = out;
    return out;
  });
  Engine warm(db);
  for (const ConjunctiveQuery& q : queries) {
    (void)warm.Run(q).ValueOrDie();  // populate the cache once
  }
  Measure("repeated_cq", "warm_cache", total_rows, reps, [&] {
    size_t out = 0;
    for (const ConjunctiveQuery& q : queries) {
      out += warm.Run(q).ValueOrDie().size();
    }
    warm_rows = out;
    return out;
  });
  if (cold_rows != warm_rows) {
    std::fprintf(stderr, "FATAL: repeated_cq answers disagree (%zu vs %zu)\n",
                 cold_rows, warm_rows);
    std::exit(1);
  }
  if (warm.last_stats().plan_cache.hits == 0) {
    std::fprintf(stderr, "FATAL: warm engine reports zero plan_cache hits\n");
    std::exit(1);
  }
}

// ---------------------------------------------------------------------------
// theorem2: lowered per-coloring plan execution, cold (recompile the
// residual plan every run) vs warm (cross-run PlanCache hit). The removed
// hand-rolled oracle's recorded answers are asserted against the lowered
// path in tests/inequality_test.cpp (tests/theorem2_recorded.inc).
// ---------------------------------------------------------------------------

void BenchTheorem2(int n, int reps) {
  // Path-rich sparse graph; simple-3-path endpoints with all-pairs ≠ keeps
  // k = 2 I1 atoms after co-occurrence splitting and runs several
  // colorings per family.
  Database db;
  {
    Graph g = GnpRandom(n, 3.0 / n, /*seed=*/21);
    RelId e = db.AddRelation("E", 2).ValueOrDie();
    for (int u = 0; u < g.num_vertices(); ++u) {
      for (int v : g.Neighbors(u)) db.relation(e).Add({u, v});
    }
  }
  auto q = ParseConjunctive(
               "ans(a, d) :- E(a, b), E(b, c), E(c, d), a != c, a != d, "
               "b != d.")
               .ValueOrDie();
  IneqOptions options;
  options.driver = IneqOptions::Driver::kMonteCarlo;
  options.mc_error_exponent = 2.0;
  options.seed = 1234;
  size_t rows = db.relation(0).size();

  size_t cold_rows = 0, warm_rows = 0;
  Measure("theorem2", "cold_compile", rows, reps, [&] {
    cold_rows = IneqEvaluate(db, q, options).ValueOrDie().size();
    return cold_rows;
  });
  PlanCache cache;
  IneqOptions warm_options = options;
  warm_options.plan_cache = &cache;
  (void)IneqEvaluate(db, q, warm_options).ValueOrDie();  // prime the cache
  Measure("theorem2", "warm_cache", rows, reps, [&] {
    warm_rows = IneqEvaluate(db, q, warm_options).ValueOrDie().size();
    return warm_rows;
  });
  if (cold_rows != warm_rows) {
    std::fprintf(stderr, "FATAL: theorem2 answers disagree (%zu vs %zu)\n",
                 cold_rows, warm_rows);
    std::exit(1);
  }
  // The acceptance headline: ONE engine-level run of the inequality query
  // must report nonzero plan_cache hits (one plan compiled, the family's
  // remaining colorings credited as reuses).
  Engine engine(db);
  (void)engine.Run(q).ValueOrDie();
  if (engine.last_stats().plan_cache.hits == 0 ||
      engine.last_stats().ineq.family_size < 2) {
    std::fprintf(stderr,
                 "FATAL: theorem2 engine run reports no plan_cache hits "
                 "(hits=%llu, family=%zu)\n",
                 static_cast<unsigned long long>(
                     engine.last_stats().plan_cache.hits),
                 engine.last_stats().ineq.family_size);
    std::exit(1);
  }
}

void PrintJson() {
  std::printf("[\n");
  for (size_t i = 0; i < g_entries.size(); ++i) {
    const Entry& e = g_entries[i];
    std::printf("  {\"bench\": \"%s\", \"impl\": \"%s\", \"rows\": %zu, "
                "\"seconds\": %.6f, \"output_rows\": %zu, "
                "\"rows_per_sec\": %.0f}%s\n",
                e.bench.c_str(), e.impl.c_str(), e.rows, e.seconds,
                e.output_rows, e.rows_per_sec,
                i + 1 < g_entries.size() ? "," : "");
  }
  std::printf("]\n");
}

}  // namespace
}  // namespace paraquery

int main(int argc, char** argv) {
  bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  paraquery::BenchRepeatedCq(quick ? 40000 : 120000, quick ? 3 : 5);
  // Extra reps: the CI parity gate on this bench has the tightest margin
  // (warm <= 1.05x cold), and Measure keeps the best-of-N, so more reps
  // directly damp shared-runner noise.
  paraquery::BenchTheorem2(quick ? 1200 : 3000, quick ? 5 : 7);
  paraquery::PrintJson();
  return 0;
}

// paraquery_shell — an interactive/batch front end for the library.
//
// Commands (one per line; anything else is parsed as a query):
//   .load NAME FILE     load a CSV file as relation NAME
//   .rel NAME ARITY     create an empty relation
//   .insert NAME v...   insert a tuple (integers or strings)
//   .rels               list relations
//   .dump NAME          print a relation as CSV
//   .explain QUERY      parametrized-complexity report + physical plan
//   .plan QUERY         print the physical plan without executing
//   .analyze QUERY      EXPLAIN ANALYZE: execute, then print the plan(s)
//                       with per-node actual rows and wall time
//   .stats              evaluator/plan counters of the previous query
//   .trace FILE|off     record per-query spans; export Chrome trace-event
//                       JSON (chrome://tracing / Perfetto) to FILE after
//                       each query. ".trace" alone prints the text profile
//                       of the last traced query
//   .metrics [json]     engine metrics registry (Prometheus text or JSON)
//   .threads N          parallel runtime width (1 = sequential, 0 = auto)
//   .timeout MS         per-query wall-clock deadline in ms (0 = off)
//   .memlimit BYTES     per-query memory budget in bytes (0 = off)
//   .help               this text
//   .quit               exit
//
// Queries use the library syntax:
//   ans(x, y) :- E(x, z), E(z, y), x != y.       (rules; multiple = Datalog)
//   ans(x) := exists y . (E(x, y) and not A(y)). (first-order)
//
// Example session:
//   .rel EP 2
//   .insert EP 1 100
//   .insert EP 1 101
//   g(e) :- EP(e, p), EP(e, q), p != q.
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "relational/csv.hpp"
#include "runtime/scheduler.hpp"

using namespace paraquery;

namespace {

void PrintRelation(const Database& db, const Relation& rel) {
  if (rel.arity() == 0) {
    std::cout << (rel.empty() ? "false" : "true") << "\n";
    return;
  }
  size_t limit = 50;
  for (size_t r = 0; r < rel.size() && r < limit; ++r) {
    for (size_t c = 0; c < rel.arity(); ++c) {
      if (c > 0) std::cout << ", ";
      Value v = rel.At(r, c);
      if (db.dict().Contains(v)) {
        std::cout << "'" << db.dict().Lookup(v) << "'";
      } else {
        std::cout << v;
      }
    }
    std::cout << "\n";
  }
  if (rel.size() > limit) {
    std::cout << "... (" << rel.size() - limit << " more rows)\n";
  }
  std::cout << "(" << rel.size() << " rows)\n";
}

std::vector<std::string> Split(const std::string& line) {
  std::istringstream iss(line);
  std::vector<std::string> out;
  std::string tok;
  while (iss >> tok) out.push_back(tok);
  return out;
}

const char* kHelp =
    ".load NAME FILE | .rel NAME ARITY | .insert NAME v... | .rels |\n"
    ".dump NAME | .explain QUERY | .plan QUERY | .analyze QUERY | .stats |\n"
    ".trace FILE|off | .metrics [json] | .threads N | .timeout MS |\n"
    ".memlimit BYTES | .help | .quit\n"
    ".plan prints the physical plan without executing (inequality queries\n"
    "show the Theorem 2 color-coding plan); .analyze executes the query\n"
    "and prints the executed plan(s) with per-node actual rows plus wall\n"
    "time (cumulative and self); .stats prints the evaluator/plan counters\n"
    "of the previous query (incl. end-to-end wall time, abort reason,\n"
    "parallel tasks, morsels, and the cumulative plan_cache\n"
    "hit/miss/stale counters — .insert and .load stale exactly the cached\n"
    "plans reading the mutated relation); .trace FILE records spans\n"
    "(query -> route -> round/disjunct/coloring -> operator -> morsel) for\n"
    "every following query and exports Chrome trace-event JSON to FILE\n"
    "(open in chrome://tracing or Perfetto; '.trace off' stops, bare\n"
    "'.trace' prints the last traced query as a text profile); .metrics\n"
    "dumps the engine-wide metrics registry (Prometheus text, or JSON\n"
    "with 'json'); .threads N sets the parallel runtime width\n"
    "(1 = sequential, 0 = hardware concurrency) — successful results are\n"
    "identical at any width; .timeout MS arms a per-query wall-clock\n"
    "deadline and .memlimit BYTES a per-query memory budget (0 disarms;\n"
    "exceeding either aborts the query with a clean error, and the engine\n"
    "stays usable).\n"
    "Anything else is evaluated as a query (':-' rules or ':=' formulas).\n"
    "Counting heads: 'COUNT(*) :- body.' returns the number of distinct\n"
    "assignments to the body variables as a single row; 'COUNT(x, y) :-\n"
    "body.' returns one (x, y, count) row per group. The same heads work\n"
    "on formulas ('COUNT(x) := exists y. R(x, y) or S(x, y).' — group keys\n"
    "must be free variables; 'COUNT(*)' counts free-variable assignments).\n"
    "Acyclic comparison-free counting runs in poly(n) without ever\n"
    "materializing the join (counting Yannakakis); see '.plan COUNT...'.\n";

}  // namespace

int main(int argc, char** argv) {
  Database db;
  Engine engine(db);
  bool interactive = true;
  std::istream* in = &std::cin;
  std::ifstream script;
  if (argc > 1) {
    script.open(argv[1]);
    if (!script) {
      std::cerr << "cannot open script '" << argv[1] << "'\n";
      return 1;
    }
    in = &script;
    interactive = false;
  }

  std::string line;
  std::string trace_path;  // empty = tracing off
  // Writes the spans of the query that just ran (tracing must be on).
  auto export_trace = [&]() {
    if (trace_path.empty() || engine.tracer() == nullptr) return;
    std::ofstream out(trace_path, std::ios::trunc);
    if (!out) {
      std::cout << "error: cannot write trace file '" << trace_path << "'\n";
      return;
    }
    out << engine.tracer()->ChromeTraceJson();
  };
  std::string pending;  // multi-line query buffer (Datalog programs)
  auto flush_pending = [&]() {
    if (pending.empty()) return;
    auto result = engine.RunText(pending, &db.dict());
    if (result.ok()) {
      PrintRelation(db, result.value());
    } else {
      std::cout << "error: " << result.status() << "\n";
    }
    export_trace();
    pending.clear();
  };

  if (interactive) std::cout << "paraquery> " << std::flush;
  while (std::getline(*in, line)) {
    std::string trimmed = line;
    while (!trimmed.empty() && std::isspace(
               static_cast<unsigned char>(trimmed.front()))) {
      trimmed.erase(trimmed.begin());
    }
    if (trimmed.empty() || trimmed[0] == '%' || trimmed[0] == '#') {
      if (interactive) std::cout << "paraquery> " << std::flush;
      continue;
    }
    if (trimmed[0] == '.') {
      flush_pending();
      auto args = Split(trimmed);
      const std::string& cmd = args[0];
      if (cmd == ".quit" || cmd == ".exit") break;
      if (cmd == ".help") {
        std::cout << kHelp;
      } else if (cmd == ".rels") {
        for (size_t i = 0; i < db.relation_count(); ++i) {
          std::cout << db.relation_name(static_cast<RelId>(i)) << "/"
                    << db.relation_arity(static_cast<RelId>(i)) << " ("
                    << db.relation(static_cast<RelId>(i)).size()
                    << " rows)\n";
        }
      } else if (cmd == ".rel" && args.size() == 3) {
        auto r = db.AddRelation(args[1], std::stoul(args[2]));
        if (!r.ok()) std::cout << "error: " << r.status() << "\n";
      } else if (cmd == ".insert" && args.size() >= 2) {
        auto found = db.FindRelation(args[1]);
        if (!found.ok()) {
          std::cout << "error: " << found.status() << "\n";
        } else if (args.size() - 2 != db.relation_arity(found.value())) {
          std::cout << "error: arity mismatch\n";
        } else {
          ValueVec row;
          for (size_t i = 2; i < args.size(); ++i) {
            const std::string& cell = args[i];
            Value parsed;
            row.push_back(ParseIntegerCell(cell, &parsed)
                              ? parsed
                              : db.dict().Intern(cell));
          }
          db.relation(found.value()).Add(row);
        }
      } else if (cmd == ".load" && args.size() == 3) {
        auto r = LoadCsvFile(&db, args[1], args[2]);
        if (r.ok()) {
          std::cout << "loaded " << db.relation(r.value()).size()
                    << " rows into " << args[1] << "\n";
        } else {
          std::cout << "error: " << r.status() << "\n";
        }
      } else if (cmd == ".dump" && args.size() == 2) {
        auto found = db.FindRelation(args[1]);
        if (found.ok()) {
          WriteCsv(db, found.value(), &std::cout, /*use_dict=*/true);
        } else {
          std::cout << "error: " << found.status() << "\n";
        }
      } else if (cmd == ".explain") {
        std::string query = trimmed.substr(8);
        auto report = engine.ExplainText(query);
        std::cout << (report.ok() ? report.value()
                                  : "error: " + report.status().ToString())
                  << "\n";
      } else if (cmd == ".plan") {
        std::string query = trimmed.substr(5);
        auto plan = engine.PlanText(query, &db.dict());
        std::cout << (plan.ok() ? plan.value()
                                : "error: " + plan.status().ToString())
                  << "\n";
      } else if (cmd == ".analyze") {
        std::string query = trimmed.substr(8);
        auto report = engine.AnalyzeText(query, &db.dict());
        std::cout << (report.ok() ? report.value()
                                  : "error: " + report.status().ToString() +
                                        "\n");
        export_trace();
      } else if (cmd == ".stats") {
        std::cout << engine.last_stats().ToString();
      } else if (cmd == ".trace" && args.size() <= 2) {
        if (args.size() == 1) {
          if (engine.tracer() == nullptr) {
            std::cout << "no traced query yet; .trace FILE to start\n";
          } else {
            std::cout << engine.tracer()->TextProfile();
          }
        } else if (args[1] == "off") {
          engine.options().trace = false;
          trace_path.clear();
          std::cout << "tracing off\n";
        } else {
          engine.options().trace = true;
          trace_path = args[1];
          std::cout << "tracing on: Chrome trace JSON -> " << trace_path
                    << " after each query\n";
        }
      } else if (cmd == ".metrics" &&
                 (args.size() == 1 ||
                  (args.size() == 2 && args[1] == "json"))) {
        std::cout << (args.size() == 2 ? engine.metrics().JsonDump()
                                       : engine.metrics().PrometheusText());
      } else if (cmd == ".threads" && args.size() == 2) {
        constexpr unsigned long kMaxThreads = 256;
        char* end = nullptr;
        unsigned long n = std::strtoul(args[1].c_str(), &end, 10);
        bool digits = !args[1].empty() &&
                      args[1].find_first_not_of("0123456789") ==
                          std::string::npos;
        if (!digits || end == nullptr || *end != '\0' || n > kMaxThreads) {
          std::cout << "error: .threads expects an integer in [0, "
                    << kMaxThreads << "]\n";
        } else {
          engine.options().threads = static_cast<size_t>(n);
          size_t effective = n == 0 ? TaskScheduler::HardwareConcurrency()
                                    : static_cast<size_t>(n);
          std::cout << "parallel runtime: " << effective
                    << (effective == 1 ? " thread (sequential)\n"
                                       : " threads\n");
        }
      } else if ((cmd == ".timeout" || cmd == ".memlimit") &&
                 args.size() == 2) {
        char* end = nullptr;
        unsigned long long n = std::strtoull(args[1].c_str(), &end, 10);
        bool digits = !args[1].empty() &&
                      args[1].find_first_not_of("0123456789") ==
                          std::string::npos;
        if (!digits || end == nullptr || *end != '\0') {
          std::cout << "error: " << cmd
                    << " expects a non-negative integer\n";
        } else if (cmd == ".timeout") {
          engine.options().limits.max_wall_ms = static_cast<uint64_t>(n);
          std::cout << (n == 0 ? "query deadline off\n"
                               : "query deadline: " + args[1] + " ms\n");
        } else {
          engine.options().limits.max_bytes = static_cast<uint64_t>(n);
          std::cout << (n == 0 ? "query memory budget off\n"
                               : "query memory budget: " + args[1] +
                                     " bytes\n");
        }
      } else {
        std::cout << "unknown command; try .help\n";
      }
    } else {
      // Query text: accumulate rules (Datalog programs span lines); execute
      // once the statement list seems complete (line ends with '.').
      pending += line;
      pending += "\n";
      // Heuristic: run when the next line is blank or input style is
      // single-statement. Here: run immediately for ':=' formulas, and for
      // rules when the buffered text parses as a program.
      if (pending.find(":=") != std::string::npos ||
          (interactive && trimmed.back() == '.')) {
        flush_pending();
      }
    }
    if (interactive) std::cout << "paraquery> " << std::flush;
  }
  flush_pending();
  return 0;
}

#include <gtest/gtest.h>

#include "relational/database.hpp"
#include "relational/dictionary.hpp"
#include "relational/named_relation.hpp"
#include "relational/predicate.hpp"
#include "relational/relation.hpp"

namespace paraquery {
namespace {

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary d;
  Value a = d.Intern("alice");
  Value b = d.Intern("bob");
  EXPECT_NE(a, b);
  EXPECT_EQ(d.Intern("alice"), a);
  EXPECT_EQ(d.Lookup(a), "alice");
  EXPECT_EQ(d.Lookup(b), "bob");
  EXPECT_EQ(d.size(), 2u);
}

TEST(DictionaryTest, FindMissing) {
  Dictionary d;
  EXPECT_EQ(d.Find("ghost"), Dictionary::kNotFound);
  d.Intern("x");
  EXPECT_EQ(d.Find("x"), Dictionary::kCodeBase);
  EXPECT_FALSE(d.Contains(5));
  EXPECT_FALSE(d.Contains(Dictionary::kCodeBase + 1));
}

TEST(DictionaryTest, CodesAreDisjointFromSmallIntegers) {
  // Codes live in the reserved range [kCodeBase, ...): a genuine integer
  // value can never be mistaken for an interned string (the WriteCsv
  // use_dict round-trip bug).
  Dictionary d;
  Value a = d.Intern("alice");
  EXPECT_TRUE(Dictionary::InCodeRange(a));
  EXPECT_TRUE(d.Contains(a));
  EXPECT_FALSE(d.Contains(0));
  EXPECT_FALSE(Dictionary::InCodeRange(0));
  EXPECT_FALSE(Dictionary::InCodeRange(-1));
  EXPECT_FALSE(Dictionary::InCodeRange((Value{1} << 62) - 1));
}

TEST(RelationTest, CopySharesStorageUntilMutation) {
  Relation a(2);
  a.Add({1, 2});
  a.Add({3, 4});
  Relation b = a;  // whole-relation alias: no row copy
  EXPECT_TRUE(b.SharesStorageWith(a));
  EXPECT_TRUE(a.SharesStorageWith(b));
  // Copy-on-write: mutating one side detaches it and leaves the other alone.
  b.Add({5, 6});
  EXPECT_FALSE(b.SharesStorageWith(a));
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(a.At(1, 1), 4);
  EXPECT_EQ(b.At(2, 0), 5);
}

TEST(RelationTest, ClearDetachesSharedStorage) {
  Relation a(1);
  a.Add({7});
  Relation b = a;
  b.Clear();
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(a.At(0, 0), 7);
}

TEST(RelationTest, HashDedupOnDuplicateFreeAliasKeepsSharing) {
  Relation a(2);
  a.Add({1, 2});
  a.Add({3, 4});
  Relation b = a;
  b.HashDedup();  // nothing to remove: must not copy
  EXPECT_TRUE(b.SharesStorageWith(a));
  a.Add({1, 2});
  Relation c = a;
  c.HashDedup();  // removes the duplicate: detaches, a keeps all 3 rows
  EXPECT_FALSE(c.SharesStorageWith(a));
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(a.size(), 3u);
}

TEST(NamedRelationTest, WithAttrsAndRenameAreZeroCopy) {
  NamedRelation r({0, 1});
  r.rel().Add({1, 2});
  NamedRelation view = r.WithAttrs({7, 9});
  EXPECT_TRUE(view.rel().SharesStorageWith(r.rel()));
  EXPECT_EQ(view.ColumnOf(7), 0);
  EXPECT_EQ(view.ColumnOf(9), 1);
  EXPECT_EQ(view.rel().At(0, 1), 2);
  view.RenameAttr(7, 3);
  EXPECT_TRUE(view.rel().SharesStorageWith(r.rel()));
  // The original's labels are untouched.
  EXPECT_EQ(r.ColumnOf(0), 0);
  // Writing through the view detaches it.
  view.rel().Add({3, 4});
  EXPECT_FALSE(view.rel().SharesStorageWith(r.rel()));
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, AddAndAccess) {
  Relation r(2);
  r.Add({1, 2});
  r.Add({3, 4});
  EXPECT_EQ(r.arity(), 2u);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.At(0, 0), 1);
  EXPECT_EQ(r.At(1, 1), 4);
}

TEST(RelationTest, SortAndDedup) {
  Relation r(2);
  r.Add({3, 4});
  r.Add({1, 2});
  r.Add({3, 4});
  r.Add({1, 1});
  r.SortAndDedup();
  EXPECT_EQ(r.size(), 3u);
  EXPECT_TRUE(r.sorted());
  EXPECT_EQ(r.At(0, 0), 1);
  EXPECT_EQ(r.At(0, 1), 1);
  EXPECT_EQ(r.At(2, 0), 3);
}

TEST(RelationTest, ContainsSortedAndUnsorted) {
  Relation r(2);
  r.Add({5, 6});
  r.Add({1, 2});
  EXPECT_TRUE(r.Contains(std::vector<Value>{5, 6}));
  EXPECT_FALSE(r.Contains(std::vector<Value>{6, 5}));
  r.SortAndDedup();
  EXPECT_TRUE(r.Contains(std::vector<Value>{5, 6}));
  EXPECT_TRUE(r.Contains(std::vector<Value>{1, 2}));
  EXPECT_FALSE(r.Contains(std::vector<Value>{0, 0}));
}

TEST(RelationTest, ZeroAryBooleanSemantics) {
  Relation r(0);
  EXPECT_TRUE(r.empty());
  r.AddEmptyRow();
  EXPECT_EQ(r.size(), 1u);
  r.AddEmptyRow();
  EXPECT_EQ(r.size(), 2u);
  r.SortAndDedup();
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains(std::vector<Value>{}));
}

TEST(RelationTest, EqualsAsSetIgnoresOrderAndDuplicates) {
  Relation a(1), b(1);
  a.Add({1});
  a.Add({2});
  a.Add({1});
  b.Add({2});
  b.Add({1});
  EXPECT_TRUE(a.EqualsAsSet(b));
  b.Add({3});
  EXPECT_FALSE(a.EqualsAsSet(b));
}

TEST(RelationTest, ClearResets) {
  Relation r(3);
  r.Add({1, 2, 3});
  r.Clear();
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.arity(), 3u);
}

TEST(NamedRelationTest, ColumnLookup) {
  NamedRelation r({10, 20, 30});
  EXPECT_EQ(r.ColumnOf(20), 1);
  EXPECT_EQ(r.ColumnOf(99), -1);
  EXPECT_TRUE(r.HasAttr(30));
}

TEST(NamedRelationTest, RenameAttr) {
  NamedRelation r({1, 2});
  r.RenameAttr(2, 7);
  EXPECT_EQ(r.ColumnOf(7), 1);
  EXPECT_EQ(r.ColumnOf(2), -1);
}

TEST(NamedRelationTest, EquivalentToHandlesColumnOrder) {
  NamedRelation a({1, 2});
  a.rel().Add({10, 20});
  NamedRelation b({2, 1});
  b.rel().Add({20, 10});
  EXPECT_TRUE(a.EquivalentTo(b));
  b.rel().Add({1, 1});
  EXPECT_FALSE(a.EquivalentTo(b));
}

TEST(NamedRelationTest, BooleanConstructors) {
  EXPECT_FALSE(BooleanTrue().empty());
  EXPECT_TRUE(BooleanFalse().empty());
  EXPECT_EQ(BooleanTrue().arity(), 0u);
}

TEST(PredicateTest, ConstraintKinds) {
  ValueVec row = {5, 5, 7};
  EXPECT_TRUE(Constraint::EqConst(0, 5).Eval(row));
  EXPECT_FALSE(Constraint::EqConst(2, 5).Eval(row));
  EXPECT_TRUE(Constraint::NeqConst(2, 5).Eval(row));
  EXPECT_TRUE(Constraint::LtConst(0, 6).Eval(row));
  EXPECT_FALSE(Constraint::LtConst(2, 7).Eval(row));
  EXPECT_TRUE(Constraint::LeConst(2, 7).Eval(row));
  EXPECT_TRUE(Constraint::GtConst(2, 6).Eval(row));
  EXPECT_TRUE(Constraint::GeConst(2, 7).Eval(row));
  EXPECT_TRUE(Constraint::EqCols(0, 1).Eval(row));
  EXPECT_FALSE(Constraint::EqCols(0, 2).Eval(row));
  EXPECT_TRUE(Constraint::NeqCols(1, 2).Eval(row));
  EXPECT_TRUE(Constraint::LtCols(1, 2).Eval(row));
  EXPECT_FALSE(Constraint::LtCols(0, 1).Eval(row));
  EXPECT_TRUE(Constraint::LeCols(0, 1).Eval(row));
}

TEST(PredicateTest, ConjunctionSemantics) {
  Predicate p;
  EXPECT_TRUE(p.Eval(ValueVec{1}));  // empty predicate accepts
  p.Add(Constraint::EqConst(0, 1));
  p.Add(Constraint::NeqConst(0, 2));
  EXPECT_TRUE(p.Eval(ValueVec{1}));
  p.Add(Constraint::EqConst(0, 3));
  EXPECT_FALSE(p.Eval(ValueVec{1}));
}

TEST(DatabaseTest, AddAndFindRelations) {
  Database db;
  auto r1 = db.AddRelation("E", 2);
  ASSERT_TRUE(r1.ok());
  auto dup = db.AddRelation("E", 3);
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
  auto found = db.FindRelation("E");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), r1.value());
  EXPECT_EQ(db.FindRelation("F").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(db.relation_arity(r1.value()), 2u);
  EXPECT_EQ(db.relation_name(r1.value()), "E");
}

TEST(DatabaseTest, ActiveDomainAndSizes) {
  Database db;
  RelId e = db.AddRelation("E", 2).ValueOrDie();
  RelId u = db.AddRelation("U", 1).ValueOrDie();
  db.relation(e).Add({1, 2});
  db.relation(e).Add({2, 3});
  db.relation(u).Add({9});
  auto dom = db.ActiveDomain();
  EXPECT_EQ(dom, (std::vector<Value>{1, 2, 3, 9}));
  EXPECT_EQ(db.TotalTuples(), 3u);
  EXPECT_EQ(db.SizeMeasure(), 2u + 2 * 2 + 1 * 1);
}

TEST(DatabaseTest, SchemaReflectsRelations) {
  Database db;
  db.AddRelation("R", 3).ValueOrDie();
  db.AddRelation("S", 1).ValueOrDie();
  DatabaseSchema schema = db.GetSchema();
  ASSERT_EQ(schema.relations.size(), 2u);
  EXPECT_EQ(schema.relations[0].name, "R");
  EXPECT_EQ(schema.relations[0].arity, 3u);
  EXPECT_EQ(schema.MaxArity(), 3u);
}

}  // namespace
}  // namespace paraquery

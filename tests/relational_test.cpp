#include <gtest/gtest.h>

#include "relational/database.hpp"
#include "relational/dictionary.hpp"
#include "relational/named_relation.hpp"
#include "relational/predicate.hpp"
#include "relational/relation.hpp"

namespace paraquery {
namespace {

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary d;
  Value a = d.Intern("alice");
  Value b = d.Intern("bob");
  EXPECT_NE(a, b);
  EXPECT_EQ(d.Intern("alice"), a);
  EXPECT_EQ(d.Lookup(a), "alice");
  EXPECT_EQ(d.Lookup(b), "bob");
  EXPECT_EQ(d.size(), 2u);
}

TEST(DictionaryTest, FindMissing) {
  Dictionary d;
  EXPECT_EQ(d.Find("ghost"), Dictionary::kNotFound);
  d.Intern("x");
  EXPECT_EQ(d.Find("x"), Dictionary::kCodeBase);
  EXPECT_FALSE(d.Contains(5));
  EXPECT_FALSE(d.Contains(Dictionary::kCodeBase + 1));
}

TEST(DictionaryTest, CodesAreDisjointFromSmallIntegers) {
  // Codes live in the reserved range [kCodeBase, ...): a genuine integer
  // value can never be mistaken for an interned string (the WriteCsv
  // use_dict round-trip bug).
  Dictionary d;
  Value a = d.Intern("alice");
  EXPECT_TRUE(Dictionary::InCodeRange(a));
  EXPECT_TRUE(d.Contains(a));
  EXPECT_FALSE(d.Contains(0));
  EXPECT_FALSE(Dictionary::InCodeRange(0));
  EXPECT_FALSE(Dictionary::InCodeRange(-1));
  EXPECT_FALSE(Dictionary::InCodeRange((Value{1} << 62) - 1));
}

TEST(RelationTest, CopySharesStorageUntilMutation) {
  Relation a(2);
  a.Add({1, 2});
  a.Add({3, 4});
  Relation b = a;  // whole-relation alias: no row copy
  EXPECT_TRUE(b.SharesStorageWith(a));
  EXPECT_TRUE(a.SharesStorageWith(b));
  // Copy-on-write: mutating one side detaches it and leaves the other alone.
  b.Add({5, 6});
  EXPECT_FALSE(b.SharesStorageWith(a));
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(a.At(1, 1), 4);
  EXPECT_EQ(b.At(2, 0), 5);
}

TEST(RelationTest, ClearDetachesSharedStorage) {
  Relation a(1);
  a.Add({7});
  Relation b = a;
  b.Clear();
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(a.At(0, 0), 7);
}

TEST(RelationTest, HashDedupOnDuplicateFreeAliasKeepsSharing) {
  Relation a(2);
  a.Add({1, 2});
  a.Add({3, 4});
  Relation b = a;
  b.HashDedup();  // nothing to remove: must not copy
  EXPECT_TRUE(b.SharesStorageWith(a));
  a.Add({1, 2});
  Relation c = a;
  c.HashDedup();  // removes the duplicate: detaches, a keeps all 3 rows
  EXPECT_FALSE(c.SharesStorageWith(a));
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(a.size(), 3u);
}

TEST(NamedRelationTest, WithAttrsAndRenameAreZeroCopy) {
  NamedRelation r({0, 1});
  r.rel().Add({1, 2});
  NamedRelation view = r.WithAttrs({7, 9});
  EXPECT_TRUE(view.rel().SharesStorageWith(r.rel()));
  EXPECT_EQ(view.ColumnOf(7), 0);
  EXPECT_EQ(view.ColumnOf(9), 1);
  EXPECT_EQ(view.rel().At(0, 1), 2);
  view.RenameAttr(7, 3);
  EXPECT_TRUE(view.rel().SharesStorageWith(r.rel()));
  // The original's labels are untouched.
  EXPECT_EQ(r.ColumnOf(0), 0);
  // Writing through the view detaches it.
  view.rel().Add({3, 4});
  EXPECT_FALSE(view.rel().SharesStorageWith(r.rel()));
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, AddAndAccess) {
  Relation r(2);
  r.Add({1, 2});
  r.Add({3, 4});
  EXPECT_EQ(r.arity(), 2u);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.At(0, 0), 1);
  EXPECT_EQ(r.At(1, 1), 4);
}

TEST(RelationTest, SortAndDedup) {
  Relation r(2);
  r.Add({3, 4});
  r.Add({1, 2});
  r.Add({3, 4});
  r.Add({1, 1});
  r.SortAndDedup();
  EXPECT_EQ(r.size(), 3u);
  EXPECT_TRUE(r.sorted());
  EXPECT_EQ(r.At(0, 0), 1);
  EXPECT_EQ(r.At(0, 1), 1);
  EXPECT_EQ(r.At(2, 0), 3);
}

TEST(RelationTest, ContainsSortedAndUnsorted) {
  Relation r(2);
  r.Add({5, 6});
  r.Add({1, 2});
  EXPECT_TRUE(r.Contains(std::vector<Value>{5, 6}));
  EXPECT_FALSE(r.Contains(std::vector<Value>{6, 5}));
  r.SortAndDedup();
  EXPECT_TRUE(r.Contains(std::vector<Value>{5, 6}));
  EXPECT_TRUE(r.Contains(std::vector<Value>{1, 2}));
  EXPECT_FALSE(r.Contains(std::vector<Value>{0, 0}));
}

TEST(RelationTest, ZeroAryBooleanSemantics) {
  Relation r(0);
  EXPECT_TRUE(r.empty());
  r.AddEmptyRow();
  EXPECT_EQ(r.size(), 1u);
  r.AddEmptyRow();
  EXPECT_EQ(r.size(), 2u);
  r.SortAndDedup();
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains(std::vector<Value>{}));
}

TEST(RelationTest, EqualsAsSetIgnoresOrderAndDuplicates) {
  Relation a(1), b(1);
  a.Add({1});
  a.Add({2});
  a.Add({1});
  b.Add({2});
  b.Add({1});
  EXPECT_TRUE(a.EqualsAsSet(b));
  b.Add({3});
  EXPECT_FALSE(a.EqualsAsSet(b));
}

TEST(RelationTest, ClearResets) {
  Relation r(3);
  r.Add({1, 2, 3});
  r.Clear();
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.arity(), 3u);
}

TEST(NamedRelationTest, ColumnLookup) {
  NamedRelation r({10, 20, 30});
  EXPECT_EQ(r.ColumnOf(20), 1);
  EXPECT_EQ(r.ColumnOf(99), -1);
  EXPECT_TRUE(r.HasAttr(30));
}

TEST(NamedRelationTest, RenameAttr) {
  NamedRelation r({1, 2});
  r.RenameAttr(2, 7);
  EXPECT_EQ(r.ColumnOf(7), 1);
  EXPECT_EQ(r.ColumnOf(2), -1);
}

TEST(NamedRelationTest, EquivalentToHandlesColumnOrder) {
  NamedRelation a({1, 2});
  a.rel().Add({10, 20});
  NamedRelation b({2, 1});
  b.rel().Add({20, 10});
  EXPECT_TRUE(a.EquivalentTo(b));
  b.rel().Add({1, 1});
  EXPECT_FALSE(a.EquivalentTo(b));
}

TEST(NamedRelationTest, BooleanConstructors) {
  EXPECT_FALSE(BooleanTrue().empty());
  EXPECT_TRUE(BooleanFalse().empty());
  EXPECT_EQ(BooleanTrue().arity(), 0u);
}

TEST(PredicateTest, ConstraintKinds) {
  ValueVec row = {5, 5, 7};
  EXPECT_TRUE(Constraint::EqConst(0, 5).Eval(row));
  EXPECT_FALSE(Constraint::EqConst(2, 5).Eval(row));
  EXPECT_TRUE(Constraint::NeqConst(2, 5).Eval(row));
  EXPECT_TRUE(Constraint::LtConst(0, 6).Eval(row));
  EXPECT_FALSE(Constraint::LtConst(2, 7).Eval(row));
  EXPECT_TRUE(Constraint::LeConst(2, 7).Eval(row));
  EXPECT_TRUE(Constraint::GtConst(2, 6).Eval(row));
  EXPECT_TRUE(Constraint::GeConst(2, 7).Eval(row));
  EXPECT_TRUE(Constraint::EqCols(0, 1).Eval(row));
  EXPECT_FALSE(Constraint::EqCols(0, 2).Eval(row));
  EXPECT_TRUE(Constraint::NeqCols(1, 2).Eval(row));
  EXPECT_TRUE(Constraint::LtCols(1, 2).Eval(row));
  EXPECT_FALSE(Constraint::LtCols(0, 1).Eval(row));
  EXPECT_TRUE(Constraint::LeCols(0, 1).Eval(row));
}

TEST(PredicateTest, ConjunctionSemantics) {
  Predicate p;
  EXPECT_TRUE(p.Eval(ValueVec{1}));  // empty predicate accepts
  p.Add(Constraint::EqConst(0, 1));
  p.Add(Constraint::NeqConst(0, 2));
  EXPECT_TRUE(p.Eval(ValueVec{1}));
  p.Add(Constraint::EqConst(0, 3));
  EXPECT_FALSE(p.Eval(ValueVec{1}));
}

TEST(DatabaseTest, AddAndFindRelations) {
  Database db;
  auto r1 = db.AddRelation("E", 2);
  ASSERT_TRUE(r1.ok());
  auto dup = db.AddRelation("E", 3);
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
  auto found = db.FindRelation("E");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), r1.value());
  EXPECT_EQ(db.FindRelation("F").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(db.relation_arity(r1.value()), 2u);
  EXPECT_EQ(db.relation_name(r1.value()), "E");
}

TEST(DatabaseTest, ActiveDomainAndSizes) {
  Database db;
  RelId e = db.AddRelation("E", 2).ValueOrDie();
  RelId u = db.AddRelation("U", 1).ValueOrDie();
  db.relation(e).Add({1, 2});
  db.relation(e).Add({2, 3});
  db.relation(u).Add({9});
  auto dom = db.ActiveDomain();
  EXPECT_EQ(dom, (std::vector<Value>{1, 2, 3, 9}));
  EXPECT_EQ(db.TotalTuples(), 3u);
  EXPECT_EQ(db.SizeMeasure(), 2u + 2 * 2 + 1 * 1);
}

TEST(DatabaseTest, SchemaReflectsRelations) {
  Database db;
  db.AddRelation("R", 3).ValueOrDie();
  db.AddRelation("S", 1).ValueOrDie();
  DatabaseSchema schema = db.GetSchema();
  ASSERT_EQ(schema.relations.size(), 2u);
  EXPECT_EQ(schema.relations[0].name, "R");
  EXPECT_EQ(schema.relations[0].arity, 3u);
  EXPECT_EQ(schema.MaxArity(), 3u);
}

TEST(DatabaseTest, GenerationBumpsOnMutationAndAddRelation) {
  Database db;
  uint64_t g0 = db.generation();
  RelId r = db.AddRelation("R", 2).ValueOrDie();
  EXPECT_GT(db.generation(), g0);
  uint64_t g1 = db.generation();
  db.relation(r).Add({1, 2});
  EXPECT_GT(db.generation(), g1);
  uint64_t g2 = db.generation();
  // Reads never bump — not even through a mutable handle: cached plans
  // stay valid across pure queries.
  (void)db.relation(r).size();
  const Database& cdb = db;
  (void)cdb.FindRelation("R");
  EXPECT_EQ(db.generation(), g2);
  // The load-bearing case: a RETAINED mutable handle still reports its
  // mutations (the stored relation carries the database's counter), so a
  // cached plan can never serve stale rows.
  Relation& handle = db.relation(r);
  handle.Add({3, 4});
  EXPECT_GT(db.generation(), g2);
  uint64_t g3 = db.generation();
  handle.Clear();
  EXPECT_GT(db.generation(), g3);
  uint64_t g4 = db.generation();
  // Views copied out of the database are NOT bound: their copy-on-write
  // mutations do not change the stored relation and must not invalidate.
  Relation view = db.relation(r);
  EXPECT_EQ(db.generation(), g4);
  view.Add({7, 8});
  EXPECT_EQ(db.generation(), g4);
  // A moved Database keeps valid bindings (the counter box travels), and
  // the moved-from object is a usable empty database, not a nulled husk.
  Database moved = std::move(db);
  uint64_t g5 = moved.generation();
  moved.relation(r).Add({5, 6});
  EXPECT_GT(moved.generation(), g5);
  EXPECT_EQ(db.relation_count(), 0u);
  EXPECT_EQ(db.generation(), 1u);
  RelId r2 = db.AddRelation("S", 1).ValueOrDie();
  db.relation(r2).Add({1});
  EXPECT_GT(db.generation(), 1u);
  Database copy_of_moved_from = db;  // must not dereference a null counter
  EXPECT_EQ(copy_of_moved_from.relation_count(), 1u);
}

TEST(DatabaseTest, CopyAssignmentRebindsAndAdvancesGeneration) {
  // Copy-assignment onto a database with bound relations must not write
  // through the replaced counter (historically a use-after-free), and the
  // new stamp must move past BOTH histories so plan caches keyed by the
  // target's old generation can never serve the old content.
  Database a;
  RelId ar = a.AddRelation("R", 1).ValueOrDie();
  a.relation(ar).Add({1});
  a.relation(ar).Add({2});  // a's generation runs ahead
  uint64_t a_gen = a.generation();
  Database b;
  RelId br = b.AddRelation("R", 1).ValueOrDie();
  b.relation(br).Add({9});
  a = b;
  EXPECT_GT(a.generation(), a_gen);
  EXPECT_EQ(a.relation(ar).size(), 1u);
  // The copy's relations are rebound to ITS counter: mutations through the
  // copy bump the copy, not the source.
  uint64_t b_gen = b.generation();
  uint64_t a_gen2 = a.generation();
  a.relation(ar).Add({7});
  EXPECT_GT(a.generation(), a_gen2);
  EXPECT_EQ(b.generation(), b_gen);
}

TEST(DatabaseTest, MoveAssignmentAdvancesPastBothHistories) {
  // Like copy-assignment: adopting a source whose generation happens to
  // coincide with the target's would let caches stamped with the target's
  // old generation serve plans over the replaced contents.
  Database a;
  RelId ar = a.AddRelation("R", 1).ValueOrDie();
  for (Value v = 0; v < 5; ++v) a.relation(ar).Add({v});
  uint64_t a_gen = a.generation();
  Database b;
  RelId br = b.AddRelation("R", 1).ValueOrDie();
  b.relation(br).Add({42});
  a = std::move(b);
  EXPECT_GT(a.generation(), a_gen);
  EXPECT_EQ(a.relation(ar).size(), 1u);
  uint64_t g = a.generation();
  a.relation(ar).Add({7});  // adopted relations stay bound
  EXPECT_GT(a.generation(), g);
}

TEST(DatabaseTest, MovedOutRelationLeavesSlotBoundAndEscapesCleanly) {
  // Stealing a stored relation empties the slot (a content change: bumped);
  // the slot stays bound, while the STOLEN relation escapes UNBOUND — it
  // must be safe to mutate even after the database is gone (a carried
  // binding would dangle into the dead database's counter).
  Relation stolen(1);
  {
    Database db;
    RelId r = db.AddRelation("R", 1).ValueOrDie();
    db.relation(r).Add({1});
    uint64_t g0 = db.generation();
    stolen = std::move(db.relation(r));
    EXPECT_GT(db.generation(), g0);  // the slot was emptied
    EXPECT_EQ(db.relation(r).size(), 0u);
    uint64_t g1 = db.generation();
    db.relation(r).Add({2});  // the emptied slot still reports
    EXPECT_GT(db.generation(), g1);
    uint64_t g2 = db.generation();
    stolen.Add({3});  // escaped: its mutations are its own
    EXPECT_EQ(db.generation(), g2);
  }
  stolen.Add({4});  // database destroyed: must not touch freed memory
  EXPECT_EQ(stolen.size(), 3u);
}

// --- Relation::DistinctCount invalidation audit -------------------------
// The counts cache on the shared RowBlock; every mutation path must either
// clear them (in-place mutation of exclusive storage) or land on a block
// without them (copy-on-write clone, storage replacement), so zero-copy
// views can never read counts computed for different rows.

TEST(RelationTest, DistinctCountComputesAndCaches) {
  Relation r(2);
  r.Add({1, 10});
  r.Add({1, 20});
  r.Add({2, 10});
  EXPECT_EQ(r.DistinctCount(0), 2u);
  EXPECT_EQ(r.DistinctCount(1), 2u);
  r.Add({3, 30});  // in-place mutation must invalidate the cached counts
  EXPECT_EQ(r.DistinctCount(0), 3u);
  EXPECT_EQ(r.DistinctCount(1), 3u);
}

TEST(RelationTest, DistinctCountSurvivesCowSplit) {
  // View and original share one block; counts computed through the view
  // must stay correct for the view after the ORIGINAL is COW-mutated, and
  // the original must recompute fresh counts — never serve the view's.
  NamedRelation orig({0, 1});
  orig.rel().Add({1, 10});
  orig.rel().Add({2, 10});
  NamedRelation view = orig.WithAttrs({7, 9});
  ASSERT_TRUE(view.rel().SharesStorageWith(orig.rel()));
  EXPECT_EQ(view.rel().DistinctCount(1), 1u);  // cached on the shared block
  orig.rel().Add({3, 30});                     // COW: orig detaches
  EXPECT_FALSE(view.rel().SharesStorageWith(orig.rel()));
  EXPECT_EQ(orig.rel().DistinctCount(1), 2u);  // fresh counts, not stale 1
  EXPECT_EQ(view.rel().DistinctCount(1), 1u);  // view's rows are unchanged
  EXPECT_EQ(view.rel().DistinctCount(0), 2u);
}

TEST(RelationTest, DistinctCountViewMutationDetachesFromSharedCache) {
  // The mirror case: the VIEW mutates after counts were cached by the
  // original; the original must keep serving correct values.
  Relation a(1);
  a.Add({1});
  a.Add({2});
  Relation b = a;
  EXPECT_EQ(a.DistinctCount(0), 2u);
  b.Add({2});  // b detaches; its clone starts without cached stats
  EXPECT_EQ(b.DistinctCount(0), 2u);  // {1,2,2}
  b.Add({5});
  EXPECT_EQ(b.DistinctCount(0), 3u);
  EXPECT_EQ(a.DistinctCount(0), 2u);
}

TEST(RelationTest, DistinctCountAfterDedupAndClear) {
  Relation r(1);
  r.Add({4});
  r.Add({4});
  r.Add({9});
  EXPECT_EQ(r.DistinctCount(0), 2u);
  r.SortAndDedup();  // replaces storage; counts must not go stale
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.DistinctCount(0), 2u);
  r.Clear();
  EXPECT_EQ(r.DistinctCount(0), 0u);
  r.Add({7});
  EXPECT_EQ(r.DistinctCount(0), 1u);
  // HashDedup on an already-duplicate-free relation keeps storage AND the
  // (still valid) counts.
  Relation s(1);
  s.Add({1});
  s.Add({2});
  EXPECT_EQ(s.DistinctCount(0), 2u);
  s.HashDedup();
  EXPECT_EQ(s.DistinctCount(0), 2u);
}

TEST(RelationTest, DistinctCountStaleAliasCannotPoisonLaterReaders) {
  // A chain of relabeled views over one materialization: counts cached by
  // any of them serve all of them, and dropping the original leaves the
  // survivors with a consistent cache.
  NamedRelation base({0, 1});
  for (Value v = 0; v < 10; ++v) base.rel().Add({v % 2, v});
  NamedRelation v1 = base.WithAttrs({3, 4});
  NamedRelation v2 = v1.WithAttrs({5, 6});
  EXPECT_EQ(v2.rel().DistinctCount(0), 2u);
  EXPECT_EQ(base.rel().DistinctCount(0), 2u);  // served from the same cache
  v1.rel().Add({42, 42});  // v1 detaches with fresh stats
  EXPECT_EQ(v1.rel().DistinctCount(0), 3u);
  EXPECT_EQ(v2.rel().DistinctCount(0), 2u);
  EXPECT_EQ(base.rel().DistinctCount(0), 2u);
}

}  // namespace
}  // namespace paraquery

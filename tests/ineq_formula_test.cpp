// Tests for the Section 5 parameter-q extension: acyclic queries with an
// arbitrary ∧/∨ formula over ≠ atoms.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "eval/inequality.hpp"
#include "eval/naive.hpp"
#include "graph/generators.hpp"
#include "query/ineq_formula.hpp"
#include "query/parser.hpp"
#include "workload/generators.hpp"

namespace paraquery {
namespace {

IneqOptions Certified() {
  IneqOptions o;
  o.driver = IneqOptions::Driver::kCertified;
  return o;
}

// Ground truth: expand φ to DNF and union the naive evaluations of the
// query with each conjunction of ≠ atoms.
Relation NaiveFormulaEvaluate(const Database& db, const ConjunctiveQuery& q,
                              const IneqFormula& phi) {
  auto dnf = phi.ToDnf().ValueOrDie();
  Relation answers(q.head.size());
  for (const auto& conj : dnf) {
    ConjunctiveQuery variant = q;
    for (const CompareAtom& c : conj) variant.comparisons.push_back(c);
    Relation part = NaiveEvaluateCq(db, variant).ValueOrDie();
    for (size_t r = 0; r < part.size(); ++r) answers.Add(part.Row(r));
  }
  answers.SortAndDedup();
  return answers;
}

TEST(IneqFormulaTest, BuildAndInspect) {
  IneqFormula phi;
  int a = phi.AddAtom({CompareOp::kNeq, Term::Var(0), Term::Var(1)});
  int b = phi.AddAtom({CompareOp::kNeq, Term::Var(1), Term::Const(5)});
  phi.root = phi.AddOr({a, b});
  EXPECT_TRUE(phi.Validate().ok());
  EXPECT_EQ(phi.Variables(), (std::vector<VarId>{0, 1}));
  EXPECT_EQ(phi.Constants(), (std::vector<Value>{5}));
  EXPECT_EQ(phi.HashRange(), 3);
}

TEST(IneqFormulaTest, EvaluateRespectsStructure) {
  IneqFormula phi;
  int a = phi.AddAtom({CompareOp::kNeq, Term::Var(0), Term::Var(1)});
  int b = phi.AddAtom({CompareOp::kNeq, Term::Var(0), Term::Var(2)});
  phi.root = phi.AddAnd({phi.AddOr({a, b}), a});
  std::vector<Value> vals = {1, 1, 2};  // x0=1, x1=1, x2=2
  auto value_of = [&vals](const Term& t) {
    return t.is_var() ? vals[t.var()] : t.value();
  };
  // a = (x0 != x1) = false; b = (x0 != x2) = true; (a or b) and a = false.
  EXPECT_FALSE(phi.Evaluate(value_of));
  vals[1] = 3;  // now a = true
  EXPECT_TRUE(phi.Evaluate(value_of));
}

TEST(IneqFormulaTest, ToDnfDistributes) {
  IneqFormula phi;
  int a = phi.AddAtom({CompareOp::kNeq, Term::Var(0), Term::Var(1)});
  int b = phi.AddAtom({CompareOp::kNeq, Term::Var(1), Term::Var(2)});
  int c = phi.AddAtom({CompareOp::kNeq, Term::Var(2), Term::Var(3)});
  int d = phi.AddAtom({CompareOp::kNeq, Term::Var(3), Term::Var(0)});
  phi.root = phi.AddAnd({phi.AddOr({a, b}), phi.AddOr({c, d})});
  auto dnf = phi.ToDnf().ValueOrDie();
  EXPECT_EQ(dnf.size(), 4u);
  for (const auto& conj : dnf) EXPECT_EQ(conj.size(), 2u);
}

TEST(IneqFormulaTest, ValidateRejectsBadFormulas) {
  IneqFormula no_root;
  EXPECT_FALSE(no_root.Validate().ok());
  IneqFormula cyclic;
  int a = cyclic.AddAtom({CompareOp::kNeq, Term::Var(0), Term::Var(1)});
  cyclic.root = cyclic.AddAnd({a});
  cyclic.nodes[cyclic.root].children.push_back(cyclic.root);  // self-loop
  EXPECT_FALSE(cyclic.Validate().ok());
}

TEST(IneqFormulaEvalTest, DisjunctionOfInequalities) {
  // g(e) over EP pairs where the two projects differ OR one is a marked id.
  Database db;
  RelId ep = db.AddRelation("EP", 2).ValueOrDie();
  db.relation(ep).Add({1, 100});
  db.relation(ep).Add({1, 101});
  db.relation(ep).Add({2, 100});
  db.relation(ep).Add({3, 777});
  auto q = ParseConjunctive("g(e) :- EP(e, p), EP(e, r).").ValueOrDie();
  VarId p = q.vars.Find("p"), r = q.vars.Find("r");
  IneqFormula phi;
  int diff = phi.AddAtom({CompareOp::kNeq, Term::Var(p), Term::Var(r)});
  int marked = phi.AddAtom({CompareOp::kNeq, Term::Var(p), Term::Const(777)});
  phi.root = phi.AddOr({diff, marked});
  auto out = IneqFormulaEvaluate(db, q, phi, Certified()).ValueOrDie();
  auto truth = NaiveFormulaEvaluate(db, q, phi);
  EXPECT_TRUE(out.EqualsAsSet(truth));
  // Employees 1, 2 satisfy via p != 777; employee 1 also via p != r;
  // employee 3 fails both (only project 777).
  EXPECT_TRUE(out.Contains(std::vector<Value>{1}));
  EXPECT_TRUE(out.Contains(std::vector<Value>{2}));
  EXPECT_FALSE(out.Contains(std::vector<Value>{3}));
}

TEST(IneqFormulaEvalTest, RejectsBodyComparisonsAndFreeFormulaVars) {
  Database db = GraphDatabase(PathGraph(3));
  auto with_cmp = ParseConjunctive("p() :- E(x, y), x != y.").ValueOrDie();
  IneqFormula phi;
  phi.root = phi.AddAtom({CompareOp::kNeq, Term::Var(0), Term::Var(1)});
  EXPECT_FALSE(IneqFormulaNonempty(db, with_cmp, phi).ok());

  auto clean = ParseConjunctive("p() :- E(x, y).").ValueOrDie();
  IneqFormula ghost;
  ghost.root = ghost.AddAtom({CompareOp::kNeq, Term::Var(7), Term::Var(0)});
  EXPECT_FALSE(IneqFormulaNonempty(db, clean, ghost).ok());
}

TEST(IneqFormulaEvalTest, ParameterVRefinementPushesVarConstConjuncts) {
  // The body may carry x != c conjuncts: they are pushed into selections
  // and do not enlarge the hash range (the paper's parameter-v case).
  Database db = GraphDatabase(PathGraph(5));
  auto q = ParseConjunctive("ans(x) :- E(x, y), E(y, z), x != 0, z != 4.")
               .ValueOrDie();
  VarId x = q.vars.Find("x"), z = q.vars.Find("z");
  IneqFormula phi;
  phi.root = phi.AddAtom({CompareOp::kNeq, Term::Var(x), Term::Var(z)});
  IneqOptions certified;
  certified.driver = IneqOptions::Driver::kCertified;
  IneqStats stats;
  auto out = IneqFormulaEvaluate(db, q, phi, certified, &stats).ValueOrDie();
  // Hash range covers only the two formula variables, not the constants.
  EXPECT_EQ(stats.k, 2);
  EXPECT_EQ(stats.i2_atoms, 2u);
  // Ground truth via naive with all atoms as plain comparisons.
  auto naive_q = ParseConjunctive(
                     "ans(x) :- E(x, y), E(y, z), x != 0, z != 4, x != z.")
                     .ValueOrDie();
  auto truth = NaiveEvaluateCq(db, naive_q).ValueOrDie();
  EXPECT_TRUE(out.EqualsAsSet(truth));
}

TEST(IneqFormulaEvalTest, DecisionMatchesEvaluation) {
  Database db = GraphDatabase(GnpRandom(12, 0.3, 5));
  auto q = ParseConjunctive("p() :- E(a, b), E(b, c), E(c, d).").ValueOrDie();
  IneqFormula phi;
  VarId a = q.vars.Find("a"), c = q.vars.Find("c"), d = q.vars.Find("d");
  int x = phi.AddAtom({CompareOp::kNeq, Term::Var(a), Term::Var(c)});
  int y = phi.AddAtom({CompareOp::kNeq, Term::Var(a), Term::Var(d)});
  phi.root = phi.AddAnd({x, y});
  bool dec = IneqFormulaNonempty(db, q, phi, Certified()).ValueOrDie();
  auto full = IneqFormulaEvaluate(db, q, phi, Certified()).ValueOrDie();
  EXPECT_EQ(dec, !full.empty());
}

// The main property: formula-mode evaluation equals the DNF-expanded naive
// ground truth on random instances.
class IneqFormulaPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IneqFormulaPropertyTest, MatchesDnfGroundTruth) {
  Rng rng(GetParam());
  Database db = RandomBinaryDatabase(2, 8 + static_cast<int>(rng.Below(18)),
                                     6, rng.Next());
  ConjunctiveQuery q =
      RandomAcyclicNeqQuery(2, 2 + static_cast<int>(rng.Below(3)), 0,
                            rng.Next());
  q.head = {Term::Var(0)};
  std::vector<VarId> pool = q.BodyVariables();
  // Random two-level formula: OR of ANDs of random != atoms.
  IneqFormula phi;
  std::vector<int> disjuncts;
  int num_disjuncts = 1 + static_cast<int>(rng.Below(3));
  for (int d = 0; d < num_disjuncts; ++d) {
    std::vector<int> conj;
    int width = 1 + static_cast<int>(rng.Below(2));
    for (int i = 0; i < width; ++i) {
      VarId x = pool[rng.Below(pool.size())];
      if (rng.Chance(0.25)) {
        conj.push_back(phi.AddAtom(
            {CompareOp::kNeq, Term::Var(x), Term::Const(rng.Range(0, 5))}));
      } else {
        VarId y = pool[rng.Below(pool.size())];
        if (x == y) {
          conj.push_back(phi.AddAtom(
              {CompareOp::kNeq, Term::Var(x), Term::Const(rng.Range(0, 5))}));
        } else {
          conj.push_back(
              phi.AddAtom({CompareOp::kNeq, Term::Var(x), Term::Var(y)}));
        }
      }
    }
    disjuncts.push_back(conj.size() == 1 ? conj[0] : phi.AddAnd(conj));
  }
  phi.root = disjuncts.size() == 1 ? disjuncts[0] : phi.AddOr(disjuncts);

  IneqStats stats;
  auto out = IneqFormulaEvaluate(db, q, phi, Certified(), &stats).ValueOrDie();
  auto truth = NaiveFormulaEvaluate(db, q, phi);
  EXPECT_TRUE(out.EqualsAsSet(truth))
      << q.ToString() << "\nphi: " << phi.ToString(q.vars)
      << "\nk=" << stats.k;
  EXPECT_EQ(IneqFormulaNonempty(db, q, phi, Certified()).ValueOrDie(),
            !truth.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, IneqFormulaPropertyTest,
                         ::testing::Range<uint64_t>(1, 41));

}  // namespace
}  // namespace paraquery

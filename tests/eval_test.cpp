// Tests for the naive, acyclic (Yannakakis), UCQ, FO, and Datalog engines.
// The Theorem 2 inequality engine has its own file (inequality_test.cpp).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "eval/acyclic.hpp"
#include "eval/common.hpp"
#include "eval/datalog_eval.hpp"
#include "eval/fo.hpp"
#include "eval/naive.hpp"
#include "eval/ucq.hpp"
#include "graph/generators.hpp"
#include "query/parser.hpp"

namespace paraquery {
namespace {

// Builds a database with a binary edge relation E from a graph (symmetric).
Database GraphDb(const Graph& g) {
  Database db;
  RelId e = db.AddRelation("E", 2).ValueOrDie();
  for (int u = 0; u < g.num_vertices(); ++u) {
    for (int v : g.Neighbors(u)) db.relation(e).Add({u, v});
  }
  return db;
}

Database MakeDb(
    const std::vector<std::pair<std::string, std::vector<ValueVec>>>& rels,
    const std::vector<size_t>& arities) {
  Database db;
  for (size_t i = 0; i < rels.size(); ++i) {
    RelId id = db.AddRelation(rels[i].first, arities[i]).ValueOrDie();
    for (const auto& row : rels[i].second) db.relation(id).Add(row);
  }
  return db;
}

TEST(AtomToRelationTest, ConstantsAndRepeats) {
  Relation r(3);
  r.Add({1, 1, 5});
  r.Add({1, 2, 5});
  r.Add({2, 2, 5});
  r.Add({1, 1, 6});
  // R(x, x, 5): rows with col0 == col1 and col2 == 5, projected to x.
  Atom a{"R", {Term::Var(0), Term::Var(0), Term::Const(5)}};
  auto out = AtomToRelation(r, a).ValueOrDie();
  EXPECT_EQ(out.attrs(), (std::vector<AttrId>{0}));
  EXPECT_EQ(out.size(), 2u);  // x in {1, 2}
}

TEST(AtomToRelationTest, FiltersArePushed) {
  Relation r(2);
  r.Add({1, 2});
  r.Add({2, 2});
  r.Add({3, 4});
  Atom a{"R", {Term::Var(0), Term::Var(1)}};
  CompareAtom neq{CompareOp::kNeq, Term::Var(0), Term::Var(1)};
  auto out = AtomToRelation(r, a, {neq}).ValueOrDie();
  EXPECT_EQ(out.size(), 2u);
  CompareAtom lt{CompareOp::kLt, Term::Const(2), Term::Var(0)};  // 2 < x
  auto out2 = AtomToRelation(r, a, {lt}).ValueOrDie();
  EXPECT_EQ(out2.size(), 1u);
}

TEST(AtomToRelationTest, ArityMismatchFails) {
  Relation r(2);
  Atom a{"R", {Term::Var(0)}};
  EXPECT_FALSE(AtomToRelation(r, a).ok());
}

TEST(NaiveTest, PathQueryOnTriangle) {
  Database db = GraphDb(CycleGraph(3));
  auto q = ParseConjunctive("ans(x, z) :- E(x, y), E(y, z).").ValueOrDie();
  auto out = NaiveEvaluateCq(db, q).ValueOrDie();
  // Symmetric triangle: every ordered pair (including x=z) is an answer.
  EXPECT_EQ(out.size(), 9u);
}

TEST(NaiveTest, InequalityFilters) {
  Database db = GraphDb(CycleGraph(3));
  auto q = ParseConjunctive("ans(x, z) :- E(x, y), E(y, z), x != z.")
               .ValueOrDie();
  auto out = NaiveEvaluateCq(db, q).ValueOrDie();
  EXPECT_EQ(out.size(), 6u);
}

TEST(NaiveTest, BooleanDecision) {
  Database db = GraphDb(PathGraph(4));
  auto tri = ParseConjunctive("p() :- E(x, y), E(y, z), E(z, x), x != y, "
                              "y != z, x != z.")
                 .ValueOrDie();
  EXPECT_FALSE(NaiveCqNonempty(db, tri).ValueOrDie());
  Database db2 = GraphDb(CycleGraph(3));
  EXPECT_TRUE(NaiveCqNonempty(db2, tri).ValueOrDie());
}

TEST(NaiveTest, ContainsBindsHead) {
  Database db = GraphDb(PathGraph(4));
  auto q = ParseConjunctive("ans(x, z) :- E(x, y), E(y, z).").ValueOrDie();
  EXPECT_TRUE(NaiveCqContains(db, q, {0, 2}).ValueOrDie());
  EXPECT_FALSE(NaiveCqContains(db, q, {0, 3}).ValueOrDie());
  EXPECT_FALSE(NaiveCqContains(db, q, {0}).ok());  // arity mismatch
}

TEST(NaiveTest, StepLimit) {
  Database db = GraphDb(CompleteGraph(30));
  auto q = ParseConjunctive(
               "p() :- E(a,b), E(b,c), E(c,d), E(d,e), E(e,f), E(f,g), "
               "E(g,h), E(h,a), a != b.")
               .ValueOrDie();
  NaiveOptions limited;
  limited.max_steps = 10;
  auto full = NaiveEvaluateCq(db, q, limited);
  EXPECT_EQ(full.status().code(), StatusCode::kResourceExhausted);
}

TEST(NaiveTest, ConstantHead) {
  Database db = GraphDb(PathGraph(3));
  auto q = ParseConjunctive("ans(x, 99) :- E(x, y).").ValueOrDie();
  auto out = NaiveEvaluateCq(db, q).ValueOrDie();
  for (size_t r = 0; r < out.size(); ++r) EXPECT_EQ(out.At(r, 1), 99);
}

TEST(AcyclicTest, RejectsCyclicAndComparisons) {
  Database db = GraphDb(CycleGraph(3));
  auto cyclic =
      ParseConjunctive("p() :- E(x,y), E(y,z), E(z,x).").ValueOrDie();
  EXPECT_FALSE(AcyclicNonempty(db, cyclic).ok());
  auto with_cmp =
      ParseConjunctive("p() :- E(x,y), x != y.").ValueOrDie();
  EXPECT_FALSE(AcyclicNonempty(db, with_cmp).ok());
}

TEST(AcyclicTest, DecisionMatchesNaive) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Database db = GraphDb(GnpRandom(12, 0.25, seed));
    auto q = ParseConjunctive(
                 "p() :- E(a,b), E(b,c), E(c,d), E(d,e).")
                 .ValueOrDie();
    EXPECT_EQ(AcyclicNonempty(db, q).ValueOrDie(),
              NaiveCqNonempty(db, q).ValueOrDie())
        << "seed=" << seed;
  }
}

TEST(AcyclicTest, EvaluationMatchesNaiveOnPathQueries) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Database db = GraphDb(GnpRandom(10, 0.3, seed));
    auto q = ParseConjunctive("ans(a, d) :- E(a,b), E(b,c), E(c,d).")
                 .ValueOrDie();
    auto yann = AcyclicEvaluate(db, q).ValueOrDie();
    auto naive = NaiveEvaluateCq(db, q).ValueOrDie();
    EXPECT_TRUE(yann.EqualsAsSet(naive)) << "seed=" << seed;
  }
}

TEST(AcyclicTest, StarJoinWithConstants) {
  Database db = MakeDb({{"R", {{1, 2}, {1, 3}, {2, 4}}},
                        {"S", {{1, 7}, {2, 8}}},
                        {"T", {{1}, {9}}}},
                       {2, 2, 1});
  auto q = ParseConjunctive("ans(x, y, w) :- R(x, y), S(x, w), T(x).")
               .ValueOrDie();
  auto out = AcyclicEvaluate(db, q).ValueOrDie();
  auto naive = NaiveEvaluateCq(db, q).ValueOrDie();
  EXPECT_TRUE(out.EqualsAsSet(naive));
  EXPECT_EQ(out.size(), 2u);  // (1,2,7), (1,3,7)
}

TEST(AcyclicTest, FullReducerAblationStillCorrect) {
  Database db = GraphDb(GnpRandom(10, 0.4, 5));
  auto q = ParseConjunctive("ans(a, c) :- E(a,b), E(b,c), E(c,d).")
               .ValueOrDie();
  AcyclicOptions no_reducer;
  no_reducer.full_reducer = false;
  auto fast = AcyclicEvaluate(db, q).ValueOrDie();
  auto slow = AcyclicEvaluate(db, q, no_reducer).ValueOrDie();
  EXPECT_TRUE(fast.EqualsAsSet(slow));
}

TEST(AcyclicTest, StatsCountZeroCopyViews) {
  Database db = MakeDb({{"R", {{1, 2}, {3, 4}}}, {"S", {{1, 2}, {5, 6}}}},
                       {2, 2});
  auto q = ParseConjunctive("ans(x, y) :- R(x, y), S(x, y).").ValueOrDie();
  AcyclicStats stats;
  auto out = AcyclicEvaluate(db, q, {}, &stats).ValueOrDie();
  EXPECT_EQ(out.size(), 1u);  // R ∩ S = {(1,2)}
  // Both atoms are constant- and repetition-free, so S_j is a zero-copy view
  // over the stored relation; the child-to-parent projection and the root
  // projection are no-ops answered by views as well.
  EXPECT_EQ(stats.shared_atom_storage, 2u);
  EXPECT_GE(stats.zero_copy_projections, 1u);
}

TEST(AcyclicTest, DisconnectedQueryIsCrossProduct) {
  Database db = MakeDb({{"A", {{1}, {2}}}, {"B", {{7}, {8}}}}, {1, 1});
  auto q = ParseConjunctive("ans(x, y) :- A(x), B(y).").ValueOrDie();
  auto out = AcyclicEvaluate(db, q).ValueOrDie();
  EXPECT_EQ(out.size(), 4u);
}

TEST(AcyclicTest, EmptyRelationShortCircuits) {
  Database db = MakeDb({{"A", {{1}}}, {"B", {}}}, {1, 1});
  auto q = ParseConjunctive("ans(x) :- A(x), B(x).").ValueOrDie();
  EXPECT_FALSE(AcyclicNonempty(db, q).ValueOrDie());
  EXPECT_TRUE(AcyclicEvaluate(db, q).ValueOrDie().empty());
}

// Property sweep: random acyclic queries, Yannakakis == naive.
class AcyclicPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AcyclicPropertyTest, MatchesNaiveOnRandomAcyclicQueries) {
  Rng rng(GetParam());
  // Random database with three binary relations over a small domain.
  Database db;
  const char* names[] = {"R0", "R1", "R2"};
  for (const char* name : names) {
    RelId id = db.AddRelation(name, 2).ValueOrDie();
    int rows = 10 + static_cast<int>(rng.Below(20));
    for (int i = 0; i < rows; ++i) {
      db.relation(id).Add({rng.Range(0, 7), rng.Range(0, 7)});
    }
  }
  // Random acyclic query: atoms chained along a random tree over variables.
  ConjunctiveQuery q;
  int num_atoms = 2 + static_cast<int>(rng.Below(4));
  std::vector<VarId> pool;
  pool.push_back(q.vars.Intern("v0"));
  for (int i = 0; i < num_atoms; ++i) {
    VarId shared = pool[rng.Below(pool.size())];
    std::string fresh_name = std::string("v") + std::to_string(i + 1);
    VarId fresh = q.vars.Intern(fresh_name);
    Atom a{names[rng.Below(3)], {Term::Var(shared), Term::Var(fresh)}};
    if (rng.Chance(0.5)) std::swap(a.terms[0], a.terms[1]);
    q.body.push_back(a);
    pool.push_back(fresh);
  }
  q.head = {Term::Var(pool[0]), Term::Var(pool[pool.size() / 2])};
  ASSERT_TRUE(q.IsAcyclic());
  auto yann = AcyclicEvaluate(db, q).ValueOrDie();
  auto naive = NaiveEvaluateCq(db, q).ValueOrDie();
  EXPECT_TRUE(yann.EqualsAsSet(naive)) << q.ToString();
  EXPECT_EQ(AcyclicNonempty(db, q).ValueOrDie(), !naive.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AcyclicPropertyTest,
                         ::testing::Range<uint64_t>(1, 31));

TEST(UcqTest, UnionOfPaths) {
  Database db = GraphDb(PathGraph(4));
  auto q = ParsePositive(
               "ans(x) := A(x) or (exists y . E(x, y)).")
               .ValueOrDie();
  // A missing would fail; add an A relation.
  db.AddRelation("A", 1).ValueOrDie();
  db.relation(db.FindRelation("A").ValueOrDie()).Add({99});
  auto out = EvaluatePositive(db, q).ValueOrDie();
  // E endpoints 0..3 all have a neighbor; plus 99 from A.
  EXPECT_EQ(out.size(), 5u);
  EXPECT_TRUE(out.Contains(std::vector<Value>{99}));
}

TEST(UcqTest, DistributedConjunction) {
  Database db = MakeDb({{"A", {{1}, {2}}},
                        {"B", {{2}, {3}}},
                        {"C", {{2}, {4}}},
                        {"D", {{2}, {5}}}},
                       {1, 1, 1, 1});
  auto q = ParsePositive(
               "ans(x) := (A(x) or B(x)) and (C(x) or D(x)).")
               .ValueOrDie();
  auto out = EvaluatePositive(db, q).ValueOrDie();
  EXPECT_EQ(out.size(), 1u);  // only 2 satisfies both sides
  EXPECT_TRUE(PositiveNonempty(db, q).ValueOrDie());
}

TEST(UcqTest, NonemptyShortCircuits) {
  Database db = MakeDb({{"A", {{1}}}, {"B", {}}}, {1, 1});
  auto q = ParsePositive("p() := (exists x . A(x)) or (exists x . B(x)).")
               .ValueOrDie();
  EXPECT_TRUE(PositiveNonempty(db, q).ValueOrDie());
  auto q2 = ParsePositive("p() := exists x . B(x).").ValueOrDie();
  EXPECT_FALSE(PositiveNonempty(db, q2).ValueOrDie());
}

TEST(FoTest, NegationComplementsActiveDomain) {
  Database db = MakeDb({{"A", {{1}, {2}}}, {"U", {{1}, {2}, {3}}}}, {1, 1});
  auto q = ParseFirstOrder("ans(x) := U(x) and not A(x).").ValueOrDie();
  auto out = EvaluateFirstOrder(db, q).ValueOrDie();
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains(std::vector<Value>{3}));
}

TEST(FoTest, ForallAsDivision) {
  // Vertices adjacent to every vertex of U.
  Database db = MakeDb({{"E", {{1, 10}, {1, 11}, {2, 10}}},
                        {"U", {{10}, {11}}}},
                       {2, 1});
  auto q = ParseFirstOrder(
               "ans(x) := (exists y . E(x, y)) and "
               "(forall z . (not U(z) or E(x, z))).")
               .ValueOrDie();
  auto out = EvaluateFirstOrder(db, q).ValueOrDie();
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains(std::vector<Value>{1}));
}

TEST(FoTest, ShadowedVariableEvaluatesCorrectly) {
  // q(x) := exists y. (E(x,y) and forall x. (not E(y,x) or A(x)))
  // The inner x is independent of the outer x.
  Database db = MakeDb({{"E", {{1, 2}, {2, 3}, {2, 4}, {5, 6}, {6, 7}}},
                        {"A", {{3}, {4}}}},
                       {2, 1});
  auto q = ParseFirstOrder(
               "ans(x) := exists y . (E(x, y) and forall x . "
               "(not E(y, x) or A(x))).")
               .ValueOrDie();
  auto out = EvaluateFirstOrder(db, q).ValueOrDie();
  // x=1: y=2, successors of 2 are {3,4} ⊆ A: yes.
  // x=5: y=6, successor 7 ∉ A: no. x=2: y∈{3,4} have no successors: yes
  // (vacuous). x=6: y=7 no successors: yes (vacuous).
  EXPECT_TRUE(out.Contains(std::vector<Value>{1}));
  EXPECT_FALSE(out.Contains(std::vector<Value>{5}));
  EXPECT_TRUE(out.Contains(std::vector<Value>{2}));
  EXPECT_TRUE(out.Contains(std::vector<Value>{6}));
}

TEST(FoTest, DeMorganEquivalence) {
  // not (A or B) == (not A) and (not B) over the active domain.
  Database db = MakeDb({{"A", {{1}, {2}}}, {"B", {{2}, {3}}},
                        {"U", {{1}, {2}, {3}, {4}}}},
                       {1, 1, 1});
  auto lhs = ParseFirstOrder("ans(x) := not (A(x) or B(x)).").ValueOrDie();
  auto rhs = ParseFirstOrder("ans(x) := not A(x) and not B(x).").ValueOrDie();
  auto l = EvaluateFirstOrder(db, lhs).ValueOrDie();
  auto r = EvaluateFirstOrder(db, rhs).ValueOrDie();
  EXPECT_TRUE(l.EqualsAsSet(r));
  EXPECT_EQ(l.size(), 1u);  // only 4
}

TEST(FoTest, ForallNotEqualsNotExistsNot) {
  Database db = GraphDb(GnpRandom(6, 0.4, 3));
  auto lhs =
      ParseFirstOrder("ans(x) := E(x, x) or forall y . E(x, y).").ValueOrDie();
  auto rhs = ParseFirstOrder(
                 "ans(x) := E(x, x) or not (exists y . not E(x, y)).")
                 .ValueOrDie();
  auto l = EvaluateFirstOrder(db, lhs).ValueOrDie();
  auto r = EvaluateFirstOrder(db, rhs).ValueOrDie();
  EXPECT_TRUE(l.EqualsAsSet(r));
}

TEST(FoTest, ComparisonAtoms) {
  Database db = MakeDb({{"A", {{1}, {2}, {3}}}}, {1});
  auto q = ParseFirstOrder("ans(x) := A(x) and x < 3 and x != 1.")
               .ValueOrDie();
  auto out = EvaluateFirstOrder(db, q).ValueOrDie();
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains(std::vector<Value>{2}));
}

TEST(FoTest, EmptyActiveDomainRejected) {
  Database db;
  db.AddRelation("A", 1).ValueOrDie();
  auto q = ParseFirstOrder("p() := exists x . A(x).").ValueOrDie();
  EXPECT_FALSE(EvaluateFirstOrder(db, q).ok());
}

TEST(FoTest, RowLimitEnforced) {
  Database db = MakeDb({{"A", {}}}, {1});
  RelId a = db.FindRelation("A").ValueOrDie();
  for (Value v = 0; v < 200; ++v) db.relation(a).Add({v});
  auto q = ParseFirstOrder(
               "p() := exists x, y, z . (not A(x) or x != y or y != z).")
               .ValueOrDie();
  FoOptions tight;
  tight.max_rows = 1000;
  EXPECT_EQ(EvaluateFirstOrder(db, q, tight).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(DatalogTest, TransitiveClosure) {
  Database db;
  RelId e = db.AddRelation("E", 2).ValueOrDie();
  db.relation(e).Add({1, 2});
  db.relation(e).Add({2, 3});
  db.relation(e).Add({3, 4});
  auto prog = ParseDatalog(
                  "tc(x, y) :- E(x, y).\n"
                  "tc(x, y) :- E(x, z), tc(z, y).\n")
                  .ValueOrDie();
  DatalogStats stats;
  auto out = EvaluateDatalog(db, prog, {}, &stats).ValueOrDie();
  EXPECT_EQ(out.size(), 6u);  // all pairs i<j in the chain
  EXPECT_TRUE(out.Contains(std::vector<Value>{1, 4}));
  EXPECT_FALSE(out.Contains(std::vector<Value>{4, 1}));
  EXPECT_GE(stats.iterations, 3u);
}

TEST(DatalogTest, SameEdbAtomAcrossRulesSharesOneMaterialization) {
  Database db;
  RelId e = db.AddRelation("E", 2).ValueOrDie();
  db.relation(e).Add({1, 2});
  db.relation(e).Add({2, 3});
  // Three body atoms over E with the same shape (two distinct variables),
  // under three different variable namings: one program-wide materialization
  // serves all of them through relabeled views.
  auto prog = ParseDatalog(
                  "p(x) :- E(x, y).\n"
                  "q(x) :- E(y, x).\n"
                  "g(x) :- p(x), q(x), E(x, z).\n"
                  "@goal g.\n")
                  .ValueOrDie();
  DatalogStats stats;
  auto out = EvaluateDatalog(db, prog, {}, &stats).ValueOrDie();
  EXPECT_EQ(stats.edb_materializations, 1u);
  EXPECT_EQ(stats.edb_cache_hits, 2u);
  // g = heads(E) ∩ tails(E) ∩ heads(E) = {2}.
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains(std::vector<Value>{2}));
}

TEST(DatalogTest, DifferentEdbAtomShapesDoNotShare) {
  Database db;
  RelId e = db.AddRelation("E", 2).ValueOrDie();
  db.relation(e).Add({1, 1});
  db.relation(e).Add({1, 2});
  // E(x, y), E(x, x) (repeated variable), and E(x, 1) (constant) select
  // different row sets: three distinct cache entries, no false sharing.
  auto prog = ParseDatalog(
                  "a(x) :- E(x, y).\n"
                  "b(x) :- E(x, x).\n"
                  "c(x) :- E(x, 1).\n"
                  "g(x) :- a(x), b(x), c(x).\n"
                  "@goal g.\n")
                  .ValueOrDie();
  DatalogStats stats;
  auto out = EvaluateDatalog(db, prog, {}, &stats).ValueOrDie();
  EXPECT_EQ(stats.edb_materializations, 3u);
  EXPECT_EQ(stats.edb_cache_hits, 0u);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains(std::vector<Value>{1}));
}

TEST(DatalogTest, SharedEdbCacheMatchesPerRuleResults) {
  // Differential check: the program-wide cache must not change any fixpoint.
  // Chain graphs exercise multi-iteration runs with the E atom in two rules.
  for (int n = 2; n <= 6; ++n) {
    Database db;
    RelId e = db.AddRelation("E", 2).ValueOrDie();
    for (Value v = 0; v + 1 < n; ++v) db.relation(e).Add({v, v + 1});
    auto prog = ParseDatalog(
                    "tc(x, y) :- E(x, y).\n"
                    "tc(x, y) :- E(x, z), tc(z, y).\n")
                    .ValueOrDie();
    DatalogStats stats;
    auto out = EvaluateDatalog(db, prog, {}, &stats).ValueOrDie();
    EXPECT_EQ(out.size(), static_cast<size_t>(n) * (n - 1) / 2);
    EXPECT_EQ(stats.edb_materializations, 1u);
    EXPECT_EQ(stats.edb_cache_hits, 1u);
  }
}

TEST(DatalogTest, RuleFiringsCountsOnlyRulesThatFire) {
  Database db;
  RelId e = db.AddRelation("E", 2).ValueOrDie();
  db.relation(e).Add({1, 2});
  db.AddRelation("F", 1).ValueOrDie();  // empty: its rule can never fire
  auto prog = ParseDatalog(
                  "p(x) :- E(x, y).\n"
                  "p(x) :- F(x).\n"
                  "@goal p.\n")
                  .ValueOrDie();
  DatalogStats stats;
  auto out = EvaluateDatalog(db, prog, {}, &stats).ValueOrDie();
  EXPECT_EQ(out.size(), 1u);
  // Round 0 evaluates both rules, but only the E rule actually fires; the
  // F rule is counted as skipped, not fired.
  EXPECT_EQ(stats.rule_firings, 1u);
  EXPECT_EQ(stats.skipped_firings, 1u);
}

TEST(DatalogTest, MissingEdbBehindEmptyAtomIsNotResolved) {
  // EDB atoms resolve lazily in body order: Q is empty, so the rule can never
  // fire and the dangling reference to R must not be an error.
  Database db;
  db.AddRelation("Q", 1).ValueOrDie();
  auto prog = ParseDatalog("g(x) :- Q(x), R(x).").ValueOrDie();
  auto out = EvaluateDatalog(db, prog).ValueOrDie();
  EXPECT_TRUE(out.empty());

  // Once the missing atom is reachable, the error surfaces.
  RelId q = db.FindRelation("Q").ValueOrDie();
  db.relation(q).Add({1});
  EXPECT_EQ(EvaluateDatalog(db, prog).status().code(), StatusCode::kNotFound);
}

TEST(DatalogTest, MatchesFloydWarshallReachability) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    int n = 8;
    std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
    Database db;
    RelId e = db.AddRelation("E", 2).ValueOrDie();
    for (int u = 0; u < n; ++u) {
      for (int v = 0; v < n; ++v) {
        if (u != v && rng.Chance(0.2)) {
          db.relation(e).Add({u, v});
          reach[u][v] = true;
        }
      }
    }
    for (int k = 0; k < n; ++k) {
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
          reach[i][j] = reach[i][j] || (reach[i][k] && reach[k][j]);
        }
      }
    }
    auto prog = ParseDatalog(
                    "tc(x, y) :- E(x, y).\n"
                    "tc(x, y) :- E(x, z), tc(z, y).\n")
                    .ValueOrDie();
    auto out = EvaluateDatalog(db, prog).ValueOrDie();
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        EXPECT_EQ(out.Contains(std::vector<Value>{i, j}), reach[i][j])
            << i << "->" << j << " seed=" << seed;
      }
    }
  }
}

TEST(DatalogTest, SameGeneration) {
  // Classic non-linear recursion.
  Database db;
  RelId up = db.AddRelation("up", 2).ValueOrDie();
  RelId flat = db.AddRelation("flat", 2).ValueOrDie();
  RelId down = db.AddRelation("down", 2).ValueOrDie();
  db.relation(up).Add({1, 3});
  db.relation(up).Add({2, 4});
  db.relation(flat).Add({3, 4});
  db.relation(down).Add({4, 2});
  db.relation(down).Add({3, 1});
  auto prog = ParseDatalog(
                  "sg(x, y) :- flat(x, y).\n"
                  "sg(x, y) :- up(x, a), sg(a, b), down(b, y).\n")
                  .ValueOrDie();
  auto out = EvaluateDatalog(db, prog).ValueOrDie();
  EXPECT_TRUE(out.Contains(std::vector<Value>{3, 4}));
  EXPECT_TRUE(out.Contains(std::vector<Value>{1, 2}));
  EXPECT_EQ(out.size(), 2u);
}

TEST(DatalogTest, EdbFactsOnlyRule) {
  Database db = MakeDb({{"A", {{5}}}}, {1});
  auto prog = ParseDatalog(
                  "g(7) :- A(x).\n"
                  "g(x) :- A(x).\n")
                  .ValueOrDie();
  auto out = EvaluateDatalog(db, prog).ValueOrDie();
  EXPECT_EQ(out.size(), 2u);
  EXPECT_TRUE(out.Contains(std::vector<Value>{7}));
  EXPECT_TRUE(out.Contains(std::vector<Value>{5}));
}

TEST(DatalogTest, MissingEdbRelationFails) {
  Database db;
  auto prog = ParseDatalog("g(x) :- Ghost(x).").ValueOrDie();
  EXPECT_EQ(EvaluateDatalog(db, prog).status().code(), StatusCode::kNotFound);
}

TEST(DatalogTest, IterationLimit) {
  Database db;
  RelId e = db.AddRelation("E", 2).ValueOrDie();
  for (Value v = 0; v < 50; ++v) db.relation(e).Add({v, v + 1});
  auto prog = ParseDatalog(
                  "tc(x, y) :- E(x, y).\n"
                  "tc(x, y) :- E(x, z), tc(z, y).\n")
                  .ValueOrDie();
  DatalogOptions limited;
  limited.max_iterations = 3;
  EXPECT_EQ(EvaluateDatalog(db, prog, limited).status().code(),
            StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace paraquery

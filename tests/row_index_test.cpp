// Unit tests for the RowIndex/RowHashSet kernel plus randomized differential
// tests checking the hash-based operators against nested-loop oracles.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "relational/ops.hpp"
#include "relational/row_index.hpp"

namespace paraquery {
namespace {

NamedRelation Make(std::vector<AttrId> attrs,
                   std::vector<std::vector<Value>> rows) {
  NamedRelation r(std::move(attrs));
  for (const auto& row : rows) r.rel().Add(row);
  return r;
}

// Rows of `rel` sorted lexicographically, duplicates preserved — a canonical
// multiset representation for comparing operator outputs exactly.
std::vector<ValueVec> CanonicalRows(const Relation& rel) {
  std::vector<ValueVec> rows;
  for (size_t r = 0; r < rel.size(); ++r) {
    rows.emplace_back(rel.Row(r).begin(), rel.Row(r).end());
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(RowIndexTest, ChainsEnumerateEqualKeysInRowOrder) {
  Relation rel(2);
  rel.Add({1, 10});
  rel.Add({2, 20});
  rel.Add({1, 30});
  rel.Add({1, 40});
  RowIndex index(rel, {0});
  EXPECT_EQ(index.distinct_keys(), 2u);

  std::vector<Value> key{1};
  uint32_t r = index.Find(key);
  ASSERT_NE(r, RowIndex::kNone);
  EXPECT_EQ(index.MatchCount(r), 3u);
  std::vector<uint32_t> chain;
  for (; r != RowIndex::kNone; r = index.Next(r)) chain.push_back(r);
  EXPECT_EQ(chain, (std::vector<uint32_t>{0, 2, 3}));

  std::vector<Value> missing{7};
  EXPECT_EQ(index.Find(missing), RowIndex::kNone);
}

TEST(RowIndexTest, EmptyKeyChainsAllRows) {
  Relation rel(1);
  rel.Add({5});
  rel.Add({6});
  rel.Add({7});
  RowIndex index(rel, {});
  EXPECT_EQ(index.distinct_keys(), 1u);
  size_t count = 0;
  for (uint32_t r = index.Find(std::span<const Value>{});
       r != RowIndex::kNone; r = index.Next(r)) {
    ++count;
  }
  EXPECT_EQ(count, 3u);
}

TEST(RowIndexTest, EmptyRelation) {
  Relation rel(2);
  RowIndex index(rel, {0});
  std::vector<Value> key{1};
  EXPECT_EQ(index.Find(key), RowIndex::kNone);
  EXPECT_EQ(index.distinct_keys(), 0u);
}

TEST(RowIndexTest, ProbeFromAnotherRelation) {
  Relation build(2);
  build.Add({3, 30});
  build.Add({4, 40});
  Relation probe(3);
  probe.Add({0, 4, 0});
  RowIndex index(build, {0});
  std::vector<int> probe_cols{1};
  uint32_t r = index.Find(probe, 0, probe_cols);
  ASSERT_NE(r, RowIndex::kNone);
  EXPECT_EQ(build.At(r, 1), 40);
}

TEST(RowHashSetTest, InsertDeduplicatesAndGrows) {
  RowHashSet set(2);
  Rng rng(3);
  size_t inserted = 0;
  // Enough rows to force several growth rehashes.
  for (int i = 0; i < 20000; ++i) {
    ValueVec row{rng.Range(0, 999), rng.Range(0, 999)};
    if (set.Insert(row)) ++inserted;
    EXPECT_TRUE(set.Contains(row));
  }
  EXPECT_EQ(set.size(), inserted);
  EXPECT_LT(inserted, 20000u);  // collisions must have occurred
  Relation rel = set.TakeRelation();
  rel.SortAndDedup();
  EXPECT_EQ(rel.size(), inserted);  // stored rows were already distinct
}

TEST(RowHashSetTest, ZeroArity) {
  RowHashSet set(0);
  EXPECT_FALSE(set.Contains(std::span<const Value>{}));
  EXPECT_TRUE(set.Insert(std::span<const Value>{}));
  EXPECT_FALSE(set.Insert(std::span<const Value>{}));
  EXPECT_TRUE(set.Contains(std::span<const Value>{}));
  EXPECT_EQ(set.size(), 1u);
}

TEST(HashDedupTest, MatchesSortAndDedupAndKeepsFirstOccurrenceOrder) {
  Relation rel(2);
  rel.Add({3, 1});
  rel.Add({1, 2});
  rel.Add({3, 1});
  rel.Add({2, 9});
  rel.Add({1, 2});
  Relation sorted = rel;
  rel.HashDedup();
  sorted.SortAndDedup();
  EXPECT_TRUE(rel.EqualsAsSet(sorted));
  ASSERT_EQ(rel.size(), 3u);
  EXPECT_EQ(rel.At(0, 0), 3);  // first occurrences, original order
  EXPECT_EQ(rel.At(1, 0), 1);
  EXPECT_EQ(rel.At(2, 0), 2);
}

// ---------------------------------------------------------------------------
// Differential tests: hash-based operators vs nested-loop oracles.
// ---------------------------------------------------------------------------

NamedRelation OracleJoin(const NamedRelation& left, const NamedRelation& right) {
  std::vector<std::pair<int, int>> common;
  for (size_t i = 0; i < left.attrs().size(); ++i) {
    int rc = right.ColumnOf(left.attrs()[i]);
    if (rc >= 0) common.emplace_back(static_cast<int>(i), rc);
  }
  std::vector<AttrId> out_attrs = left.attrs();
  std::vector<int> right_extra;
  for (size_t i = 0; i < right.attrs().size(); ++i) {
    if (!left.HasAttr(right.attrs()[i])) {
      out_attrs.push_back(right.attrs()[i]);
      right_extra.push_back(static_cast<int>(i));
    }
  }
  NamedRelation out{out_attrs};
  ValueVec row(out_attrs.size());
  for (size_t lr = 0; lr < left.size(); ++lr) {
    for (size_t rr = 0; rr < right.size(); ++rr) {
      bool match = true;
      for (auto [lc, rc] : common) {
        if (left.rel().At(lr, lc) != right.rel().At(rr, rc)) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      for (size_t i = 0; i < left.arity(); ++i) row[i] = left.rel().At(lr, i);
      for (size_t i = 0; i < right_extra.size(); ++i) {
        row[left.arity() + i] = right.rel().At(rr, right_extra[i]);
      }
      out.rel().Add(row);
    }
  }
  return out;
}

NamedRelation OracleSemijoin(const NamedRelation& left,
                             const NamedRelation& right) {
  std::vector<std::pair<int, int>> common;
  for (size_t i = 0; i < left.attrs().size(); ++i) {
    int rc = right.ColumnOf(left.attrs()[i]);
    if (rc >= 0) common.emplace_back(static_cast<int>(i), rc);
  }
  NamedRelation out{left.attrs()};
  if (common.empty()) {
    if (!right.empty()) out = left;
    return out;
  }
  for (size_t lr = 0; lr < left.size(); ++lr) {
    bool any = false;
    for (size_t rr = 0; rr < right.size() && !any; ++rr) {
      any = true;
      for (auto [lc, rc] : common) {
        if (left.rel().At(lr, lc) != right.rel().At(rr, rc)) {
          any = false;
          break;
        }
      }
    }
    if (any) out.rel().Add(left.rel().Row(lr));
  }
  return out;
}

// Oracle set ops on identical attribute sets (columns may be permuted).
NamedRelation OracleDifference(const NamedRelation& left,
                               const NamedRelation& right) {
  std::vector<int> perm(left.arity());
  for (size_t i = 0; i < left.attrs().size(); ++i) {
    perm[i] = right.ColumnOf(left.attrs()[i]);
  }
  NamedRelation out{left.attrs()};
  for (size_t lr = 0; lr < left.size(); ++lr) {
    bool found = false;
    for (size_t rr = 0; rr < right.size() && !found; ++rr) {
      found = true;
      for (size_t i = 0; i < perm.size(); ++i) {
        if (left.rel().At(lr, i) != right.rel().At(rr, perm[i])) {
          found = false;
          break;
        }
      }
    }
    if (!found) out.rel().Add(left.rel().Row(lr));
  }
  out.rel().SortAndDedup();
  return out;
}

NamedRelation OracleIntersect(const NamedRelation& left,
                              const NamedRelation& right) {
  std::vector<int> perm(left.arity());
  for (size_t i = 0; i < left.attrs().size(); ++i) {
    perm[i] = right.ColumnOf(left.attrs()[i]);
  }
  NamedRelation out{left.attrs()};
  for (size_t lr = 0; lr < left.size(); ++lr) {
    bool found = false;
    for (size_t rr = 0; rr < right.size() && !found; ++rr) {
      found = true;
      for (size_t i = 0; i < perm.size(); ++i) {
        if (left.rel().At(lr, i) != right.rel().At(rr, perm[i])) {
          found = false;
          break;
        }
      }
    }
    if (found) out.rel().Add(left.rel().Row(lr));
  }
  out.rel().SortAndDedup();
  return out;
}

// Value pools stressing different hash behaviors: a dense small domain (long
// chains, frequent slot collisions), values whose low bits coincide (slot
// congestion after masking), and extreme magnitudes.
ValueVec CollisionPool(int which) {
  switch (which % 3) {
    case 0: {
      ValueVec pool;
      for (Value v = 0; v < 4; ++v) pool.push_back(v);
      return pool;
    }
    case 1: {
      ValueVec pool;
      for (int i = 0; i < 6; ++i) {
        pool.push_back(static_cast<Value>(i) << 32);  // identical low words
      }
      return pool;
    }
    default:
      return {std::numeric_limits<Value>::min(),
              std::numeric_limits<Value>::max(), -1, 0, 1};
  }
}

NamedRelation RandomRel(Rng& rng, std::vector<AttrId> attrs, int max_rows,
                        const ValueVec& pool) {
  NamedRelation rel(std::move(attrs));
  int rows = static_cast<int>(rng.Below(max_rows + 1));
  ValueVec row(rel.attrs().size());
  for (int i = 0; i < rows; ++i) {
    for (auto& v : row) v = pool[rng.Below(pool.size())];
    rel.rel().Add(row);
  }
  return rel;
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, JoinAndSemijoinMatchNestedLoopOracle) {
  Rng rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    ValueVec pool = CollisionPool(round);
    // Attribute overlap varies: {0,1}x{1,2} shares one attr, {0,1}x{2,3} is
    // a cross product (empty key), {0,1}x{1,0} shares both.
    std::vector<std::vector<AttrId>> rights = {{1, 2}, {2, 3}, {1, 0}};
    NamedRelation left = RandomRel(rng, {0, 1}, 40, pool);
    NamedRelation right = RandomRel(rng, rights[round % 3], 40, pool);

    auto join = NaturalJoin(left, right).ValueOrDie();
    auto oracle = OracleJoin(left, right);
    EXPECT_EQ(join.attrs(), oracle.attrs());
    EXPECT_EQ(CanonicalRows(join.rel()), CanonicalRows(oracle.rel()))
        << "join mismatch: left=" << left.ToString()
        << " right=" << right.ToString();

    auto semi = Semijoin(left, right);
    auto semi_oracle = OracleSemijoin(left, right);
    EXPECT_EQ(CanonicalRows(semi.rel()), CanonicalRows(semi_oracle.rel()))
        << "semijoin mismatch: left=" << left.ToString()
        << " right=" << right.ToString();
  }
}

TEST_P(DifferentialTest, SetOpsMatchNestedLoopOracle) {
  Rng rng(GetParam() ^ 0xabcdef);
  for (int round = 0; round < 20; ++round) {
    ValueVec pool = CollisionPool(round);
    // Same attribute set, possibly permuted columns.
    NamedRelation left = RandomRel(rng, {0, 1}, 40, pool);
    NamedRelation right = RandomRel(
        rng, round % 2 == 0 ? std::vector<AttrId>{0, 1}
                            : std::vector<AttrId>{1, 0},
        40, pool);

    auto diff = Difference(left, right);
    auto diff_oracle = OracleDifference(left, right);
    EXPECT_TRUE(diff.rel().EqualsAsSet(diff_oracle.rel()))
        << "difference mismatch: left=" << left.ToString()
        << " right=" << right.ToString();

    auto inter = Intersect(left, right);
    auto inter_oracle = OracleIntersect(left, right);
    EXPECT_TRUE(inter.rel().EqualsAsSet(inter_oracle.rel()))
        << "intersect mismatch: left=" << left.ToString()
        << " right=" << right.ToString();

    // Union/difference/intersection partition identity.
    auto uni = UnionSet(Difference(left, right), Intersect(left, right));
    NamedRelation dl = left;
    dl.rel().SortAndDedup();
    EXPECT_TRUE(uni.EquivalentTo(dl));
  }
}

TEST(DifferentialTest, AllDuplicateInputs) {
  NamedRelation left = Make({0, 1}, {{7, 7}, {7, 7}, {7, 7}, {7, 7}});
  NamedRelation right = Make({1, 2}, {{7, 9}, {7, 9}, {7, 9}});
  auto join = NaturalJoin(left, right).ValueOrDie();
  EXPECT_EQ(join.size(), 12u);  // multiset semantics: 4 x 3 matches
  EXPECT_EQ(CanonicalRows(join.rel()), CanonicalRows(OracleJoin(left, right).rel()));
  EXPECT_EQ(Semijoin(left, right).size(), 4u);
  EXPECT_EQ(Intersect(left, Make({0, 1}, {{7, 7}})).size(), 1u);
  EXPECT_TRUE(Difference(left, Make({0, 1}, {{7, 7}})).empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace paraquery

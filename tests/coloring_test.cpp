#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "hashing/coloring.hpp"

namespace paraquery {
namespace {

TEST(ColoringTest, MonteCarloSizeMatchesFormula) {
  auto fam = ColoringFamily::MonteCarlo(4, 2.0, 1);
  EXPECT_EQ(fam.size(),
            static_cast<size_t>(std::ceil(2.0 * std::exp(4.0))));
  EXPECT_EQ(fam.k(), 4);
  EXPECT_FALSE(fam.certified());
}

TEST(ColoringTest, TrivialKIsSingleMemberCertified) {
  auto fam0 = ColoringFamily::MonteCarlo(0, 1.0, 1);
  EXPECT_EQ(fam0.size(), 1u);
  EXPECT_TRUE(fam0.certified());
  auto fam1 = ColoringFamily::MonteCarlo(1, 1.0, 1);
  EXPECT_EQ(fam1.size(), 1u);
  EXPECT_EQ(fam1.Color(0, 12345), 1);
}

TEST(ColoringTest, ColorsInRange) {
  auto fam = ColoringFamily::MonteCarlo(5, 1.0, 7);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    Value v = static_cast<Value>(rng.Next());
    for (size_t m = 0; m < 3; ++m) {
      Value c = fam.Color(m, v);
      EXPECT_GE(c, 1);
      EXPECT_LE(c, 5);
    }
  }
}

TEST(ColoringTest, ColorIsDeterministic) {
  auto a = ColoringFamily::MonteCarlo(3, 1.0, 42);
  auto b = ColoringFamily::MonteCarlo(3, 1.0, 42);
  for (Value v = 0; v < 100; ++v) EXPECT_EQ(a.Color(0, v), b.Color(0, v));
}

TEST(ColoringTest, CertifiedIsPerfectOnGround) {
  std::vector<Value> ground;
  for (Value v = 100; v < 130; ++v) ground.push_back(v * 7919);
  for (int k = 2; k <= 4; ++k) {
    auto fam = ColoringFamily::Certified(ground, k, /*seed=*/5).ValueOrDie();
    EXPECT_TRUE(fam.certified());
    EXPECT_TRUE(fam.IsPerfectOn(ground)) << "k=" << k;
    EXPECT_GE(fam.size(), 1u);
  }
}

TEST(ColoringTest, CertifiedRejectsHugeGround) {
  std::vector<Value> ground(100);
  for (int i = 0; i < 100; ++i) ground[i] = i;
  auto fam = ColoringFamily::Certified(ground, 5, 1, /*max_subsets=*/1000);
  EXPECT_EQ(fam.status().code(), StatusCode::kResourceExhausted);
}

TEST(ColoringTest, CertifiedTinyGround) {
  // Ground smaller than k: no k-subsets, trivially certified.
  std::vector<Value> ground = {10, 20};
  auto fam = ColoringFamily::Certified(ground, 3, 1).ValueOrDie();
  EXPECT_TRUE(fam.certified());
  // Ground exactly k: needs one injective member.
  std::vector<Value> ground3 = {10, 20, 30};
  auto fam3 = ColoringFamily::Certified(ground3, 3, 1).ValueOrDie();
  EXPECT_TRUE(fam3.IsPerfectOn(ground3));
}

TEST(ColoringTest, InjectiveOnDetectsCollisions) {
  auto fam = ColoringFamily::MonteCarlo(2, 1.0, 9);
  // With k=2 and 3 values, injectivity is impossible.
  EXPECT_FALSE(fam.InjectiveOn(0, {1, 2, 3}));
}

TEST(ColoringTest, MonteCarloHitsWitnessWithHighProbability) {
  // Empirical sanity check of the paper's probability bound: for a fixed
  // witness set of size k, at least one member of a c=3 family should be
  // injective on it (failure probability <= e^-3 ~ 0.05; seeds chosen fixed).
  for (int k = 2; k <= 5; ++k) {
    std::vector<Value> witness;
    for (int i = 0; i < k; ++i) witness.push_back(1000 + i * 31337);
    auto fam = ColoringFamily::MonteCarlo(k, 3.0, 1234 + k);
    bool hit = false;
    for (size_t m = 0; m < fam.size() && !hit; ++m) {
      hit = fam.InjectiveOn(m, witness);
    }
    EXPECT_TRUE(hit) << "k=" << k;
  }
}

}  // namespace
}  // namespace paraquery

#include <gtest/gtest.h>

#include "circuit/circuit.hpp"
#include "circuit/cnf.hpp"
#include "circuit/normalize.hpp"
#include "circuit/weighted_sat.hpp"
#include "common/rng.hpp"

namespace paraquery {
namespace {

TEST(CircuitTest, EvaluateAndOr) {
  Circuit c(2);
  int a = c.AddGate(GateKind::kAnd, {0, 1});
  int o = c.AddGate(GateKind::kOr, {0, a});
  c.SetOutput(o);
  EXPECT_FALSE(c.Evaluate({false, false}));
  EXPECT_FALSE(c.Evaluate({false, true}));
  EXPECT_TRUE(c.Evaluate({true, false}));
  EXPECT_TRUE(c.Evaluate({true, true}));
}

TEST(CircuitTest, EvaluateNot) {
  Circuit c(1);
  c.SetOutput(c.AddGate(GateKind::kNot, {0}));
  EXPECT_TRUE(c.Evaluate({false}));
  EXPECT_FALSE(c.Evaluate({true}));
  EXPECT_FALSE(c.IsMonotone());
}

TEST(CircuitTest, DepthCountsAndOrOnly) {
  Circuit c(2);
  int n = c.AddGate(GateKind::kNot, {0});
  int a = c.AddGate(GateKind::kAnd, {n, 1});
  int o = c.AddGate(GateKind::kOr, {a, 1});
  c.SetOutput(o);
  EXPECT_EQ(c.Depth(), 2);  // NOT does not count
}

TEST(CircuitTest, BuildersAreCorrect) {
  Circuit a = AndOfInputs(3);
  EXPECT_TRUE(a.Evaluate({true, true, true}));
  EXPECT_FALSE(a.Evaluate({true, false, true}));
  Circuit o = OrOfInputs(3);
  EXPECT_TRUE(o.Evaluate({false, false, true}));
  EXPECT_FALSE(o.Evaluate({false, false, false}));
  EXPECT_TRUE(a.IsMonotone());
  EXPECT_EQ(a.Depth(), 1);
}

TEST(CnfTest, EvaluateAndWidth) {
  Cnf f;
  f.num_vars = 3;
  f.clauses = {{PosLit(0), NegLit(1)}, {PosLit(2)}};
  EXPECT_TRUE(f.HasWidth(2));
  EXPECT_FALSE(f.HasWidth(1));
  EXPECT_TRUE(f.Evaluate({true, false, true}));
  EXPECT_FALSE(f.Evaluate({false, true, true}));
  EXPECT_FALSE(f.Evaluate({true, false, false}));
}

TEST(CnfTest, LiteralHelpers) {
  EXPECT_EQ(LitVar(PosLit(4)), 4);
  EXPECT_EQ(LitVar(NegLit(4)), 4);
  EXPECT_FALSE(LitNegated(PosLit(4)));
  EXPECT_TRUE(LitNegated(NegLit(4)));
}

TEST(CnfTest, ToCircuitMatchesOnAllAssignments) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    Cnf f;
    f.num_vars = 4;
    int num_clauses = 1 + static_cast<int>(rng.Below(5));
    for (int c = 0; c < num_clauses; ++c) {
      std::vector<Lit> clause;
      int width = 1 + static_cast<int>(rng.Below(3));
      for (int l = 0; l < width; ++l) {
        int var = static_cast<int>(rng.Below(4));
        clause.push_back(rng.Chance(0.5) ? PosLit(var) : NegLit(var));
      }
      f.clauses.push_back(clause);
    }
    Circuit c = f.ToCircuit();
    for (int mask = 0; mask < 16; ++mask) {
      std::vector<bool> assign(4);
      for (int i = 0; i < 4; ++i) assign[i] = (mask >> i) & 1;
      EXPECT_EQ(f.Evaluate(assign), c.Evaluate(assign)) << "trial " << trial;
    }
  }
}

TEST(WeightedSatTest, CircuitExactWeight) {
  // AND(x0, x1): only weight-2 solutions containing {0,1}.
  Circuit c = AndOfInputs(2);
  EXPECT_FALSE(WeightedCircuitSat(c, 0).has_value());
  EXPECT_FALSE(WeightedCircuitSat(c, 1).has_value());
  auto w2 = WeightedCircuitSat(c, 2);
  ASSERT_TRUE(w2.has_value());
  EXPECT_EQ(*w2, (std::vector<int>{0, 1}));
}

TEST(WeightedSatTest, OrAnyWeightAboveZero) {
  Circuit c = OrOfInputs(3);
  EXPECT_FALSE(WeightedCircuitSat(c, 0).has_value());
  for (int k = 1; k <= 3; ++k) {
    EXPECT_TRUE(WeightedCircuitSat(c, k).has_value()) << k;
  }
  EXPECT_FALSE(WeightedCircuitSat(c, 4).has_value());
}

TEST(WeightedSatTest, CnfWeighted) {
  // (x0 | x1) & (~x0 | ~x1): exactly one of x0,x1 — weight 1 yes, weight 2
  // no (if only 2 vars).
  Cnf f;
  f.num_vars = 2;
  f.clauses = {{PosLit(0), PosLit(1)}, {NegLit(0), NegLit(1)}};
  EXPECT_TRUE(WeightedCnfSat(f, 1).has_value());
  EXPECT_FALSE(WeightedCnfSat(f, 2).has_value());
  EXPECT_FALSE(WeightedCnfSat(f, 0).has_value());
}

TEST(WeightedSatTest, MonotoneThresholdProperty) {
  // Monotone circuit satisfiable at weight j is satisfiable at all k >= j.
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    Circuit c(5);
    int g1 = c.AddGate(GateKind::kOr,
                       {static_cast<int>(rng.Below(5)),
                        static_cast<int>(rng.Below(5))});
    int g2 = c.AddGate(GateKind::kAnd,
                       {static_cast<int>(rng.Below(5)), g1});
    c.SetOutput(c.AddGate(GateKind::kOr, {g2, static_cast<int>(rng.Below(5))}));
    int first_sat = -1;
    for (int k = 0; k <= 5; ++k) {
      if (WeightedMonotoneCircuitSat(c, k).has_value()) {
        first_sat = k;
        break;
      }
    }
    if (first_sat >= 0) {
      for (int k = first_sat; k <= 5; ++k) {
        EXPECT_TRUE(WeightedMonotoneCircuitSat(c, k).has_value());
      }
    }
  }
}

TEST(GroupedW2CnfTest, PicksOnePerGroupAvoidingConflicts) {
  GroupedW2Cnf inst;
  inst.num_vars = 4;
  inst.groups = {{0, 1}, {2, 3}};
  inst.clauses = {{0, 2}, {0, 3}};  // var 0 conflicts with both of group 2
  auto sol = SolveGroupedW2Cnf(inst);
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ((*sol)[0], 1);  // must pick 1 from the first group
}

TEST(GroupedW2CnfTest, InfeasibleWhenAllPairsConflict) {
  GroupedW2Cnf inst;
  inst.num_vars = 4;
  inst.groups = {{0, 1}, {2, 3}};
  inst.clauses = {{0, 2}, {0, 3}, {1, 2}, {1, 3}};
  EXPECT_FALSE(SolveGroupedW2Cnf(inst).has_value());
}

TEST(GroupedW2CnfTest, EmptyGroupInfeasible) {
  GroupedW2Cnf inst;
  inst.num_vars = 2;
  inst.groups = {{0, 1}, {}};
  EXPECT_FALSE(SolveGroupedW2Cnf(inst).has_value());
}

TEST(GroupedW2CnfTest, AgreesWithExhaustiveCnfSolver) {
  Rng rng(13);
  for (int trial = 0; trial < 30; ++trial) {
    GroupedW2Cnf inst;
    int k = 2 + static_cast<int>(rng.Below(2));  // 2..3 groups
    int per_group = 2 + static_cast<int>(rng.Below(2));
    inst.num_vars = k * per_group;
    for (int g = 0; g < k; ++g) {
      std::vector<int> group;
      for (int i = 0; i < per_group; ++i) group.push_back(g * per_group + i);
      inst.groups.push_back(group);
      // Intra-group conflicts (at-most-one), as the reduction emits.
      for (int i = 0; i < per_group; ++i) {
        for (int j = i + 1; j < per_group; ++j) {
          inst.clauses.push_back({group[i], group[j]});
        }
      }
    }
    // Random cross-group conflicts.
    int extra = static_cast<int>(rng.Below(6));
    for (int e = 0; e < extra; ++e) {
      int a = static_cast<int>(rng.Below(inst.num_vars));
      int b = static_cast<int>(rng.Below(inst.num_vars));
      if (a != b) inst.clauses.push_back({a, b});
    }
    bool grouped = SolveGroupedW2Cnf(inst).has_value();
    bool exhaustive = WeightedCnfSat(inst.ToCnf(), k).has_value();
    EXPECT_EQ(grouped, exhaustive) << "trial " << trial;
  }
}

TEST(NormalizeTest, RejectsNonMonotone) {
  Circuit c(1);
  c.SetOutput(c.AddGate(GateKind::kNot, {0}));
  EXPECT_FALSE(NormalizeMonotone(c).ok());
}

TEST(NormalizeTest, RejectsNoOutput) {
  Circuit c(2);
  EXPECT_FALSE(NormalizeMonotone(c).ok());
}

TEST(NormalizeTest, StructureIsAlternatingAndLeveled) {
  Circuit c(3);
  int a = c.AddGate(GateKind::kAnd, {0, 1});
  int o = c.AddGate(GateKind::kOr, {a, 2});
  c.SetOutput(o);
  auto alt = NormalizeMonotone(c).ValueOrDie();
  EXPECT_EQ(alt.top_level % 2, 0);
  EXPECT_GE(alt.top_level, 2);
  const Circuit& cc = alt.circuit;
  EXPECT_EQ(alt.level[cc.output()], alt.top_level);
  EXPECT_EQ(cc.gate(cc.output()).kind, GateKind::kOr);
  for (int g = 0; g < cc.num_gates(); ++g) {
    const Gate& gate = cc.gate(g);
    if (gate.kind == GateKind::kInput) {
      EXPECT_EQ(alt.level[g], 0);
      continue;
    }
    EXPECT_EQ(gate.kind,
              alt.level[g] % 2 == 0 ? GateKind::kOr : GateKind::kAnd);
    for (int in : gate.inputs) {
      EXPECT_EQ(alt.level[in], alt.level[g] - 1) << "wire must be adjacent";
    }
  }
}

// Property: normalization preserves the computed function.
class NormalizePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NormalizePropertyTest, PreservesFunction) {
  Rng rng(GetParam());
  int inputs = 3 + static_cast<int>(rng.Below(3));  // 3..5
  Circuit c(inputs);
  int extra = 2 + static_cast<int>(rng.Below(5));
  for (int i = 0; i < extra; ++i) {
    GateKind kind = rng.Chance(0.5) ? GateKind::kAnd : GateKind::kOr;
    int fan_in = 1 + static_cast<int>(rng.Below(3));
    std::vector<int> ins;
    for (int j = 0; j < fan_in; ++j) {
      ins.push_back(static_cast<int>(rng.Below(
          static_cast<uint64_t>(c.num_gates()))));
    }
    c.AddGate(kind, ins);
  }
  c.SetOutput(c.num_gates() - 1);
  auto alt = NormalizeMonotone(c).ValueOrDie();
  for (int mask = 0; mask < (1 << inputs); ++mask) {
    std::vector<bool> assign(inputs);
    for (int i = 0; i < inputs; ++i) assign[i] = (mask >> i) & 1;
    EXPECT_EQ(c.Evaluate(assign), alt.Evaluate(assign)) << "mask=" << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormalizePropertyTest,
                         ::testing::Range<uint64_t>(1, 26));

}  // namespace
}  // namespace paraquery

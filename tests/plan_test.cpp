// Tests for the physical plan subsystem: golden plan renders, schedule
// parity with the pre-plan Yannakakis implementation (kept inline here as
// the reference), randomized differential testing of the plan executor
// against the backtracking oracle, resource-limit plumbing, UCQ disjunct
// handling, and the engine/EXPLAIN surface.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "core/explain.hpp"
#include "eval/acyclic.hpp"
#include "eval/common.hpp"
#include "eval/datalog_eval.hpp"
#include "eval/naive.hpp"
#include "eval/ucq.hpp"
#include "graph/generators.hpp"
#include "hypergraph/join_tree.hpp"
#include "plan/executor.hpp"
#include "plan/planner.hpp"
#include "query/parser.hpp"
#include "relational/ops.hpp"
#include "workload/generators.hpp"

namespace paraquery {
namespace {

Database GraphDb(const Graph& g) {
  Database db;
  RelId e = db.AddRelation("E", 2).ValueOrDie();
  for (int u = 0; u < g.num_vertices(); ++u) {
    for (int v : g.Neighbors(u)) db.relation(e).Add({u, v});
  }
  return db;
}

// The fixed four-edge database the golden renders are pinned to.
Database GoldenDb() {
  Database db;
  RelId e = db.AddRelation("E", 2).ValueOrDie();
  db.relation(e).Add({1, 2});
  db.relation(e).Add({2, 3});
  db.relation(e).Add({3, 1});
  db.relation(e).Add({3, 4});
  return db;
}

// ---------------------------------------------------------------------------
// Reference implementation: the pre-plan Yannakakis evaluator (the seed's
// eval/acyclic.cpp), kept verbatim so schedule parity is checked against the
// real historical algorithm rather than a re-derivation.
// ---------------------------------------------------------------------------

struct LegacyStats {
  size_t semijoins = 0;
  size_t joins = 0;
};

Result<Relation> LegacyYannakakis(const Database& db,
                                  const ConjunctiveQuery& q,
                                  LegacyStats* stats) {
  std::vector<NamedRelation> rels;
  for (const Atom& a : q.body) {
    PQ_ASSIGN_OR_RETURN(RelId id, db.FindRelation(a.relation));
    PQ_ASSIGN_OR_RETURN(NamedRelation rel, AtomToRelation(db.relation(id), a));
    rels.push_back(std::move(rel));
  }
  Hypergraph h = q.BuildHypergraph();
  PQ_ASSIGN_OR_RETURN(JoinTree tree, BuildJoinTree(h));
  Relation empty(q.head.size());
  for (const NamedRelation& rel : rels) {
    if (rel.empty()) return empty;
  }
  for (int j : tree.bottom_up) {  // upward semijoins
    int u = tree.parent[j];
    if (u < 0) continue;
    rels[u] = Semijoin(rels[u], rels[j]);
    ++stats->semijoins;
    if (rels[u].empty()) return empty;
  }
  for (int j : tree.top_down) {  // downward semijoins
    int u = tree.parent[j];
    if (u < 0) continue;
    rels[j] = Semijoin(rels[j], rels[u]);
    ++stats->semijoins;
  }
  std::vector<VarId> head_vars = q.HeadVariables();
  auto is_head = [&head_vars](AttrId a) {
    return std::find(head_vars.begin(), head_vars.end(), a) !=
           head_vars.end();
  };
  size_t m = tree.size();
  std::vector<std::vector<AttrId>> subtree_head(m);
  for (int j : tree.bottom_up) {
    std::vector<AttrId> acc;
    for (AttrId a : rels[j].attrs()) {
      if (is_head(a)) acc.push_back(a);
    }
    for (int c : tree.children[j]) {
      for (AttrId a : subtree_head[c]) acc.push_back(a);
    }
    std::sort(acc.begin(), acc.end());
    acc.erase(std::unique(acc.begin(), acc.end()), acc.end());
    subtree_head[j] = std::move(acc);
  }
  for (int j : tree.bottom_up) {  // upward join-and-project pass
    int u = tree.parent[j];
    if (u < 0) continue;
    std::vector<AttrId> zj;
    for (AttrId a : rels[j].attrs()) {
      if (rels[u].HasAttr(a)) zj.push_back(a);
    }
    for (AttrId a : subtree_head[j]) {
      if (std::find(zj.begin(), zj.end(), a) == zj.end()) zj.push_back(a);
    }
    PQ_ASSIGN_OR_RETURN(rels[u],
                        NaturalJoin(rels[u], Project(rels[j], zj)));
    ++stats->joins;
    if (rels[u].empty()) return empty;
  }
  return BindingsToAnswers(Project(rels[tree.root], head_vars), q.head);
}

// ---------------------------------------------------------------------------
// Golden plan renders.
// ---------------------------------------------------------------------------

TEST(PlanGoldenTest, AcyclicPathQuery) {
  Database db = GoldenDb();
  auto q = ParseConjunctive("ans(a, d) :- E(a,b), E(b,c), E(c,d).")
               .ValueOrDie();
  auto plan = PlanAcyclicCq(db, q).ValueOrDie();
  EXPECT_EQ(plan.Render(),
            "Project(a, d) est=1\n"
            "  HashJoin(b, c, d, a) est=1\n"
            "    HashJoin(b, c, d) est=1\n"
            "      Semijoin(b, c) est=1 as #1\n"
            "        Semijoin(b, c) est=2\n"
            "          Scan(b, c) E(b, c) rows=4\n"
            "          Scan(c, d) E(c, d) rows=4 as #2\n"
            "        Scan(a, b) E(a, b) rows=4 as #3\n"
            "      Project(c, d) est=2\n"
            "        Semijoin(c, d) est=2\n"
            "          Scan(c, d) E(c, d) see #2\n"
            "          Semijoin(b, c) see #1\n"
            "    Project(b, a) est=2\n"
            "      Semijoin(a, b) est=2\n"
            "        Scan(a, b) E(a, b) see #3\n"
            "        Semijoin(b, c) see #1\n");
}

TEST(PlanGoldenTest, CyclicTriangleWithInequality) {
  Database db = GoldenDb();
  auto q = ParseConjunctive("ans(x) :- E(x,y), E(y,z), E(z,x), x != y.")
               .ValueOrDie();
  auto plan = PlanCyclicCq(db, q).ValueOrDie();
  // Join selectivities come from the real per-column distinct counts
  // (Relation::DistinctCount) — for GoldenDb's E, V(col0)=3 and V(col1)=4.
  EXPECT_EQ(plan.Render(),
            "Dedup(x) est=1\n"
            "  Materialize(x) est=1\n"
            "    Project(x) [vec] est=1\n"
            "      HashJoin(x, y, z) [vec] est=1\n"
            "        HashJoin(x, y, z) [vec] est=4\n"
            "          Select(x, y) [vec] $0!=$1 est=4\n"
            "            Scan(x, y) [vec] E(x, y) rows=4\n"
            "          Scan(y, z) E(y, z) rows=4\n"
            "        Scan(z, x) E(z, x) rows=4\n");
}

TEST(PlanGoldenTest, DatalogTransitiveClosure) {
  Database db = GoldenDb();
  auto tc = TransitiveClosureProgram();
  EXPECT_EQ(RenderDatalogPlan(db, tc).ValueOrDie(),
            "Fixpoint(tc) [semi-naive, 2 rules; delta-substituted variants "
            "are planned at first firing]\n"
            "  rule 0: tc(x,y) :- E(x,y).\n"
            "    Materialize(x, y) est=4\n"
            "      Project(x, y) [vec] est=4\n"
            "        Scan(x, y) [vec] E(x, y) rows=4\n"
            "  rule 1: tc(x,y) :- E(x,z), tc(z,y).\n"
            "    Materialize(x, y) est=?\n"
            "      Project(x, y) [vec] est=?\n"
            "        HashJoin(z, y, x) [vec] est=?\n"
            "          Scan(z, y) [vec] tc(z, y) rows=?\n"
            "          Scan(x, z) E(x, z) rows=4\n");
}

// ---------------------------------------------------------------------------
// Schedule parity with the legacy Yannakakis implementation.
// ---------------------------------------------------------------------------

TEST(PlanParityTest, YannakakisScheduleCountsAndAnswers) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    Database db = RandomBinaryDatabase(3, 80, 25, seed);
    ConjunctiveQuery q = RandomAcyclicNeqQuery(3, 5, 0, seed);
    LegacyStats legacy;
    auto reference = LegacyYannakakis(db, q, &legacy).ValueOrDie();
    AcyclicStats stats;
    PlanStats plan_stats;
    auto planned = AcyclicEvaluate(db, q, {}, &stats, &plan_stats).ValueOrDie();
    EXPECT_TRUE(planned.EqualsAsSet(reference)) << "seed=" << seed;
    if (!reference.empty()) {
      // Nonempty runs execute the full schedule: counts must be identical
      // (2(m-1) semijoins, m-1 joins for m atoms).
      EXPECT_EQ(plan_stats.semijoins, legacy.semijoins) << "seed=" << seed;
      EXPECT_EQ(plan_stats.joins, legacy.joins) << "seed=" << seed;
      EXPECT_EQ(plan_stats.semijoins, 2 * (q.body.size() - 1));
      EXPECT_EQ(plan_stats.joins, q.body.size() - 1);
      // The deprecated AcyclicStats mirror agrees with PlanStats.
      EXPECT_EQ(stats.semijoins, plan_stats.semijoins);
      EXPECT_EQ(stats.joins, plan_stats.joins);
    }
  }
}

TEST(PlanParityTest, EvalTestQueriesKeepTheirCounts) {
  // The acyclic queries the pre-plan eval tests pinned their stats on.
  Database db = GraphDb(GnpRandom(10, 0.3, 3));
  auto q = ParseConjunctive("ans(a, d) :- E(a,b), E(b,c), E(c,d).")
               .ValueOrDie();
  LegacyStats legacy;
  auto reference = LegacyYannakakis(db, q, &legacy).ValueOrDie();
  ASSERT_FALSE(reference.empty());
  PlanStats plan_stats;
  auto planned =
      AcyclicEvaluate(db, q, {}, nullptr, &plan_stats).ValueOrDie();
  EXPECT_TRUE(planned.EqualsAsSet(reference));
  EXPECT_EQ(plan_stats.semijoins, legacy.semijoins);
  EXPECT_EQ(plan_stats.joins, legacy.joins);
}

TEST(PlanParityTest, FullReducerAblationMatches) {
  Database db = GraphDb(GnpRandom(10, 0.4, 5));
  auto q = ParseConjunctive("ans(a, c) :- E(a,b), E(b,c), E(c,d).")
               .ValueOrDie();
  AcyclicOptions no_reducer;
  no_reducer.full_reducer = false;
  PlanStats ps;
  auto out = AcyclicEvaluate(db, q, no_reducer, nullptr, &ps).ValueOrDie();
  EXPECT_EQ(ps.semijoins, 0u);  // the reducer passes are gone from the plan
  EXPECT_EQ(ps.joins, q.body.size() - 1);
  auto reduced = AcyclicEvaluate(db, q).ValueOrDie();
  EXPECT_TRUE(out.EqualsAsSet(reduced));
}

// ---------------------------------------------------------------------------
// Randomized differential: plan executor vs the backtracking oracle.
// ---------------------------------------------------------------------------

class PlanDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlanDifferentialTest, MatchesBacktrackingOnGeneratedWorkloads) {
  uint64_t seed = GetParam();
  Database db = RandomBinaryDatabase(3, 60, 20, seed);
  for (int neq = 0; neq <= 3; ++neq) {
    ConjunctiveQuery q = RandomAcyclicNeqQuery(3, 4, neq, seed * 7 + neq);
    auto planned = NaiveEvaluateCq(db, q).ValueOrDie();
    auto oracle = BacktrackEvaluateCq(db, q).ValueOrDie();
    EXPECT_TRUE(planned.EqualsAsSet(oracle))
        << "seed=" << seed << " neq=" << neq;
    if (neq == 0) {
      auto yannakakis = AcyclicEvaluate(db, q).ValueOrDie();
      EXPECT_TRUE(yannakakis.EqualsAsSet(oracle)) << "seed=" << seed;
    }
  }
}

TEST_P(PlanDifferentialTest, MatchesBacktrackingOnCyclicQueries) {
  uint64_t seed = GetParam();
  Database db = GraphDb(GnpRandom(9, 0.35, seed));
  const char* queries[] = {
      "ans(x) :- E(x,y), E(y,z), E(z,x).",
      "ans(x, w) :- E(x,y), E(y,z), E(z,w), E(w,x), x != z.",
      "p() :- E(x,y), E(y,z), E(z,x), x != y, y != z, x != z.",
      "ans(a) :- E(a, b), E(b, a), E(a, c), E(c, a), E(b, c).",
  };
  for (const char* text : queries) {
    auto q = ParseConjunctive(text).ValueOrDie();
    auto planned = NaiveEvaluateCq(db, q).ValueOrDie();
    auto oracle = BacktrackEvaluateCq(db, q).ValueOrDie();
    EXPECT_TRUE(planned.EqualsAsSet(oracle))
        << "seed=" << seed << " q=" << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PlanDifferentialTest,
                         ::testing::Range<uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// Executor mechanics.
// ---------------------------------------------------------------------------

TEST(PlanExecutorTest, UnionAndActualRows) {
  NamedRelation a({0});
  a.rel().Add({1});
  a.rel().Add({2});
  NamedRelation b({0});
  b.rel().Add({2});
  b.rel().Add({3});
  auto u = MakeUnion({MakeScan(0, {0}, "A", 2), MakeScan(1, {0}, "B", 2)},
                     {0});
  std::vector<const NamedRelation*> inputs = {&a, &b};
  PlanStats stats;
  ExecContext ctx{inputs, {}, &stats};
  auto out = ExecutePlan(*u, ctx).ValueOrDie();
  EXPECT_EQ(out.size(), 3u);
  EXPECT_EQ(stats.unions, 1u);
  EXPECT_EQ(u->actual_rows, 3u);
  EXPECT_NE(RenderPlan(*u).find("actual=3"), std::string::npos);
}

TEST(PlanExecutorTest, FixpointNodesAreRejected) {
  auto fp = MakeFixpoint({MakeScan(0, {0}, "A", 1)}, "semi-naive");
  NamedRelation a({0});
  std::vector<const NamedRelation*> inputs = {&a};
  ExecContext ctx{inputs, {}, nullptr};
  EXPECT_EQ(ExecutePlan(*fp, ctx).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PlanExecutorTest, ExecutedPlanRenderShowsActuals) {
  Database db = GoldenDb();
  auto q = ParseConjunctive("ans(a, d) :- E(a,b), E(b,c), E(c,d).")
               .ValueOrDie();
  auto plan = PlanConjunctive(db, q).ValueOrDie();
  PlanStats stats;
  auto bindings = ExecutePhysicalPlan(plan, {}, &stats).ValueOrDie();
  EXPECT_FALSE(bindings.empty());
  std::string render = plan.Render();
  EXPECT_NE(render.find("actual="), std::string::npos);
  EXPECT_EQ(stats.scans, 3u);
}

// ---------------------------------------------------------------------------
// Unified resource limits.
// ---------------------------------------------------------------------------

TEST(ResourceLimitsTest, StepLimitThroughNaiveOptions) {
  Database db = GraphDb(CompleteGraph(20));
  auto q = ParseConjunctive("ans(a, d) :- E(a,b), E(b,c), E(c,d).")
               .ValueOrDie();
  NaiveOptions limited;
  limited.limits.max_steps = 50;
  EXPECT_EQ(NaiveEvaluateCq(db, q, limited).status().code(),
            StatusCode::kResourceExhausted);
  // The deprecated alias still works when the unified field is unset.
  NaiveOptions legacy;
  legacy.max_steps = 50;
  EXPECT_EQ(NaiveEvaluateCq(db, q, legacy).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(ResourceLimitsTest, RowLimitThroughAcyclicOptions) {
  Database db = GraphDb(CompleteGraph(30));
  auto q = ParseConjunctive("ans(a, c) :- E(a, b), E(b, c).").ValueOrDie();
  AcyclicOptions tight;
  tight.limits.max_rows = 100;
  EXPECT_EQ(AcyclicEvaluate(db, q, tight).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(ResourceLimitsTest, EngineLimitsOverrideEvaluatorOptions) {
  Database db = GraphDb(CompleteGraph(20));
  EngineOptions options;
  options.limits.max_steps = 10;
  Engine engine(db, options);
  // Cyclic query: routed to the plan-based naive evaluator.
  auto q = ParseConjunctive("ans(x) :- E(x,y), E(y,z), E(z,x).").ValueOrDie();
  EXPECT_EQ(engine.Run(q).status().code(), StatusCode::kResourceExhausted);
  // Datalog: the engine-level row cap bounds total derived tuples.
  EngineOptions dl_options;
  dl_options.limits.max_rows = 5;
  Engine dl_engine(db, dl_options);
  auto result = dl_engine.RunText(
      "tc(x, y) :- E(x, y).\n"
      "tc(x, y) :- E(x, z), tc(z, y).\n");
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// UCQ: option threading, stats aggregation, disjunct dedup.
// ---------------------------------------------------------------------------

TEST(UcqPlanTest, DuplicateDisjunctsAreDeduped) {
  Database db;
  RelId a = db.AddRelation("A", 1).ValueOrDie();
  db.relation(a).Add({1});
  db.relation(a).Add({2});
  auto q = ParsePositive("ans(x) := A(x) or A(x).").ValueOrDie();
  UcqStats stats;
  auto out = EvaluatePositive(db, q, {}, &stats).ValueOrDie();
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(stats.disjuncts_expanded, 2u);
  EXPECT_EQ(stats.disjuncts_deduped, 1u);
  EXPECT_EQ(stats.disjuncts_evaluated, 1u);
}

TEST(UcqPlanTest, LimitsReachAcyclicDisjuncts) {
  // Before the unification the acyclic path dropped UcqOptions entirely; a
  // row guard must now abort the oversized disjunct.
  Database db;
  RelId a = db.AddRelation("A", 1).ValueOrDie();
  for (Value v = 0; v < 200; ++v) db.relation(a).Add({v});
  auto q = ParsePositive("ans(x) := A(x) or A(x).").ValueOrDie();
  UcqOptions options;
  options.limits.max_rows = 10;
  EXPECT_EQ(EvaluatePositive(db, q, options).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(UcqPlanTest, StatsAggregateAcrossDisjuncts) {
  Database db = GraphDb(CycleGraph(4));
  auto q = ParsePositive("ans(x) := exists y . (E(x, y) or E(y, x)).")
               .ValueOrDie();
  UcqStats stats;
  auto out = EvaluatePositive(db, q, {}, &stats).ValueOrDie();
  EXPECT_EQ(out.size(), 4u);
  EXPECT_EQ(stats.disjuncts_evaluated, 2u);
  EXPECT_EQ(stats.acyclic_disjuncts, 2u);
  EXPECT_GE(stats.plan.scans, 2u);
  EXPECT_GE(stats.plan.projections, 2u);
}

// ---------------------------------------------------------------------------
// Datalog: per-rule plan reuse.
// ---------------------------------------------------------------------------

TEST(DatalogPlanTest, RulePlansAreReusedAcrossIterations) {
  Database db;
  RelId e = db.AddRelation("E", 2).ValueOrDie();
  for (Value v = 0; v < 30; ++v) db.relation(e).Add({v, v + 1});
  DatalogStats stats;
  auto out =
      EvaluateDatalog(db, TransitiveClosureProgram(), {}, &stats).ValueOrDie();
  EXPECT_EQ(out.size(), 30u * 31u / 2u);
  // Three variants ever fire: the EDB-only rule at round 0, the recursive
  // rule at round 0 (the base rule's tuples are already in the IDB by then),
  // and the recursive rule's single delta variant; every later firing
  // reuses a cached plan — except when the observed delta size drifts >10x
  // from the size the variant was planned at, which on this chain happens
  // exactly once (the delta shrinks from 30 rows toward 1).
  EXPECT_EQ(stats.plans_built, 3u);
  EXPECT_GT(stats.plan_reuses, 10u);
  EXPECT_EQ(stats.replans, 1u);
  EXPECT_EQ(stats.rule_firings,
            stats.plans_built + stats.plan_reuses + stats.replans);
  // The shared executor's counters surface through DatalogStats::plan.
  EXPECT_EQ(stats.edb_index_builds, stats.plan.index_builds);
  EXPECT_GT(stats.plan.joins, 10u);
}

// ---------------------------------------------------------------------------
// Engine and EXPLAIN surface.
// ---------------------------------------------------------------------------

TEST(EnginePlanTest, ExplainTextRendersPlansForAllLanguages) {
  Database db = GraphDb(CycleGraph(4));
  Engine engine(db);
  auto cq = engine.ExplainText("ans(a, c) :- E(a, b), E(b, c).").ValueOrDie();
  EXPECT_NE(cq.find("physical plan:"), std::string::npos);
  EXPECT_NE(cq.find("HashJoin"), std::string::npos);
  EXPECT_NE(cq.find("Semijoin"), std::string::npos);
  auto ucq = engine.ExplainText("ans(x) := exists y . (E(x, y) or E(y, x)).")
                 .ValueOrDie();
  EXPECT_NE(ucq.find("physical plan:"), std::string::npos);
  EXPECT_NE(ucq.find("Union [2 disjuncts]"), std::string::npos);
  auto dl = engine.ExplainText(
                   "tc(x, y) :- E(x, y).\n"
                   "tc(x, y) :- E(x, z), tc(z, y).\n")
                .ValueOrDie();
  EXPECT_NE(dl.find("physical plan:"), std::string::npos);
  EXPECT_NE(dl.find("Fixpoint(tc)"), std::string::npos);
}

TEST(EnginePlanTest, PlanTextDoesNotExecute) {
  Database db = GraphDb(CycleGraph(4));
  Engine engine(db);
  auto plan = engine.PlanText("ans(a, c) :- E(a, b), E(b, c).").ValueOrDie();
  EXPECT_NE(plan.find("route: Yannakakis"), std::string::npos);
  // Estimates only — nothing ran, so no actual row counts.
  EXPECT_EQ(plan.find("actual="), std::string::npos);
  EXPECT_FALSE(engine.PlanText("p() := not (exists x . E(x, x)).").ok());
}

TEST(EnginePlanTest, LastStatsCarryPlanCounters) {
  Database db = GraphDb(CycleGraph(4));
  Engine engine(db);
  ASSERT_TRUE(engine.RunText("ans(a, c) :- E(a, b), E(b, c).").ok());
  EXPECT_EQ(engine.last_stats().plan.joins, 1u);
  EXPECT_EQ(engine.last_stats().plan.semijoins, 2u);
  EXPECT_EQ(engine.last_stats().acyclic.joins, 1u);  // legacy mirror
  ASSERT_TRUE(engine
                  .RunText(
                      "tc(x, y) :- E(x, y).\n"
                      "tc(x, y) :- E(x, z), tc(z, y).\n")
                  .ok());
  EXPECT_GT(engine.last_stats().plan.joins, 0u);
  EXPECT_GT(engine.last_stats().datalog.plans_built, 0u);
  ASSERT_TRUE(
      engine.RunText("ans(x) := exists y . (E(x, y) or E(y, x)).").ok());
  EXPECT_EQ(engine.last_stats().ucq.disjuncts_evaluated, 2u);
  EXPECT_GT(engine.last_stats().plan.scans, 0u);
  EXPECT_FALSE(engine.last_stats().ToString().empty());
}

}  // namespace
}  // namespace paraquery

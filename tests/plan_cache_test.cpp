// Tests for the program-wide plan cache: canonicalization, hit/miss/
// invalidation mechanics, cross-query reuse on every route (acyclic CQ,
// cyclic CQ, UCQ disjuncts, Datalog rule variants, Theorem 2 colorings),
// and — the part that matters — identical answers with and without the
// cache, across database mutations.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "eval/inequality.hpp"
#include "graph/generators.hpp"
#include "plan/plan_cache.hpp"
#include "query/parser.hpp"

namespace paraquery {
namespace {

Database SmallGraphDb(int n, double p, uint64_t seed) {
  Graph g = GnpRandom(n, p, seed);
  Database db;
  RelId e = db.AddRelation("E", 2).ValueOrDie();
  for (int u = 0; u < g.num_vertices(); ++u) {
    for (int v : g.Neighbors(u)) db.relation(e).Add({u, v});
  }
  return db;
}

TEST(CanonicalizeCqTest, RenamingEquivalentQueriesShareSignatureAndAnswers) {
  auto q1 = ParseConjunctive("ans(x, z) :- E(x, y), E(y, z).").ValueOrDie();
  auto q2 = ParseConjunctive("ans(a, c) :- E(a, b), E(b, c).").ValueOrDie();
  auto q3 = ParseConjunctive("ans(z, x) :- E(x, y), E(y, z).").ValueOrDie();
  CanonicalCq c1 = CanonicalizeCq(q1);
  CanonicalCq c2 = CanonicalizeCq(q2);
  EXPECT_EQ(c1.signature, c2.signature);
  EXPECT_NE(c1.signature, CanonicalizeCq(q3).signature);  // head order differs
  EXPECT_EQ(c1.signature, CanonicalCqSignature(q1));
  // The canonical query is the same query modulo variable ids: answers match.
  Database db = SmallGraphDb(12, 0.3, 7);
  Engine engine(db);
  auto a1 = engine.Run(q1).ValueOrDie();
  auto a2 = engine.Run(c1.query).ValueOrDie();
  EXPECT_TRUE(a1.EqualsAsSet(a2));
  // Canonicalizing an already-canonical query is a fixpoint.
  EXPECT_EQ(CanonicalizeCq(c1.query).signature, c1.signature);
}

TEST(PlanCacheTest, LookupInsertAndPerRelationStaleness) {
  Database db;
  RelId e = db.AddRelation("E", 2).ValueOrDie();
  RelId f = db.AddRelation("F", 2).ValueOrDie();
  db.relation(e).Add({1, 2});
  db.relation(f).Add({1, 2});
  auto qe = ParseConjunctive("ans(x, y) :- E(x, y).").ValueOrDie();
  auto qf = ParseConjunctive("ans(x, y) :- F(x, y).").ValueOrDie();
  PlanCache cache;
  EXPECT_EQ(cache.Lookup<int>("ke", db), nullptr);  // miss
  cache.Insert("ke", db, qe, std::make_shared<int>(42));
  cache.Insert("kf", db, qf, std::make_shared<int>(43));
  auto hit = cache.Lookup<int>("ke", db);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 42);
  PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.stale_entries, 0u);
  EXPECT_EQ(s.entries, 2u);
  // Mutating E stales exactly the E-reading entry; the F entry survives.
  db.relation(e).Add({2, 3});
  EXPECT_EQ(cache.Lookup<int>("ke", db), nullptr);
  ASSERT_NE(cache.Lookup<int>("kf", db), nullptr);
  s = cache.stats();
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.stale_entries, 1u);
  EXPECT_EQ(s.entries, 1u);
  // NoteReuse credits hits without a lookup.
  cache.NoteReuse(5);
  EXPECT_EQ(cache.stats().hits, 7u);
}

TEST(PlanCacheTest, LruCapacityEvictsColdestEntry) {
  Database db;
  RelId e = db.AddRelation("E", 2).ValueOrDie();
  db.relation(e).Add({1, 2});
  auto q = ParseConjunctive("ans(x, y) :- E(x, y).").ValueOrDie();
  PlanCache cache;
  cache.set_capacity(2);
  EXPECT_EQ(cache.capacity(), 2u);
  cache.Insert("a", db, q, std::make_shared<int>(1));
  cache.Insert("b", db, q, std::make_shared<int>(2));
  // Touch "a" so "b" is the LRU entry when "c" overflows the capacity.
  ASSERT_NE(cache.Lookup<int>("a", db), nullptr);
  cache.Insert("c", db, q, std::make_shared<int>(3));
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.Lookup<int>("b", db), nullptr);  // evicted
  EXPECT_NE(cache.Lookup<int>("a", db), nullptr);
  EXPECT_NE(cache.Lookup<int>("c", db), nullptr);
  // Shrinking the capacity evicts immediately, coldest first.
  cache.set_capacity(1);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_NE(cache.Lookup<int>("c", db), nullptr);  // the MRU entry survived
  // Capacity 0 = unlimited.
  cache.set_capacity(0);
  cache.Insert("d", db, q, std::make_shared<int>(4));
  cache.Insert("e", db, q, std::make_shared<int>(5));
  EXPECT_EQ(cache.stats().entries, 3u);
  EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(PlanCacheTest, AcyclicRepeatAndRenamedQueryHit) {
  Database db = SmallGraphDb(15, 0.3, 11);
  Engine engine(db);
  auto q = ParseConjunctive("ans(x, z) :- E(x, y), E(y, z).").ValueOrDie();
  auto first = engine.Run(q).ValueOrDie();
  uint64_t misses = engine.last_stats().plan_cache.misses;
  EXPECT_GT(misses, 0u);
  EXPECT_EQ(engine.last_stats().plan_cache.hits, 0u);
  // Identical repeat: hit, same answers.
  auto second = engine.Run(q).ValueOrDie();
  EXPECT_TRUE(first.EqualsAsSet(second));
  EXPECT_GT(engine.last_stats().plan_cache.hits, 0u);
  EXPECT_EQ(engine.last_stats().plan_cache.misses, misses);
  // Renaming-equivalent query: also a hit (canonical key).
  auto renamed =
      ParseConjunctive("ans(p, r) :- E(p, q), E(q, r).").ValueOrDie();
  uint64_t hits = engine.last_stats().plan_cache.hits;
  auto third = engine.Run(renamed).ValueOrDie();
  EXPECT_TRUE(first.EqualsAsSet(third));
  EXPECT_GT(engine.last_stats().plan_cache.hits, hits);
  EXPECT_EQ(engine.last_stats().plan_cache.misses, misses);
}

TEST(PlanCacheTest, InsertInvalidatesAndAnswersTrackNewData) {
  Database db;
  RelId e = db.AddRelation("E", 2).ValueOrDie();
  db.relation(e).Add({1, 2});
  db.relation(e).Add({2, 3});
  Engine engine(db);
  auto q = ParseConjunctive("ans(x, z) :- E(x, y), E(y, z).").ValueOrDie();
  auto before = engine.Run(q).ValueOrDie();
  EXPECT_EQ(before.size(), 1u);  // (1,3)
  ASSERT_TRUE(engine.Run(q).ok());
  EXPECT_GT(engine.last_stats().plan_cache.hits, 0u);
  // Mutation through the mutable handle bumps E's generation stamp; the
  // next run must drop the stale entry and see the new row — a stale cached
  // plan would keep answering from the old S_j views.
  db.relation(e).Add({3, 4});
  auto after = engine.Run(q).ValueOrDie();
  EXPECT_EQ(after.size(), 2u);  // (1,3), (2,4)
  EXPECT_GT(engine.last_stats().plan_cache.stale_entries, 0u);
}

TEST(PlanCacheTest, RetainedHandleMutationInvalidates) {
  // Mutations through a Relation& grabbed BEFORE the engine ever ran must
  // still invalidate: stored relations carry the database's generation
  // counter, so the bump happens at mutation time, not handle-access time.
  Database db;
  RelId e = db.AddRelation("E", 2).ValueOrDie();
  Relation& handle = db.relation(e);
  handle.Add({1, 2});
  handle.Add({2, 3});
  Engine engine(db);
  auto q = ParseConjunctive("ans(x, z) :- E(x, y), E(y, z).").ValueOrDie();
  EXPECT_EQ(engine.Run(q).ValueOrDie().size(), 1u);
  handle.Add({3, 4});  // the engine never sees this handle
  auto after = engine.Run(q).ValueOrDie();
  EXPECT_EQ(after.size(), 2u) << "cached plan served stale rows";
  EXPECT_GT(engine.last_stats().plan_cache.stale_entries, 0u);
}

TEST(PlanCacheTest, CyclicRouteCachesToo) {
  Database db = SmallGraphDb(12, 0.4, 5);
  Engine engine(db);
  auto q = ParseConjunctive("ans(x) :- E(x, y), E(y, z), E(z, x).")
               .ValueOrDie();
  auto first = engine.Run(q).ValueOrDie();
  uint64_t misses = engine.last_stats().plan_cache.misses;
  auto second = engine.Run(q).ValueOrDie();
  EXPECT_TRUE(first.EqualsAsSet(second));
  EXPECT_GT(engine.last_stats().plan_cache.hits, 0u);
  EXPECT_EQ(engine.last_stats().plan_cache.misses, misses);
}

TEST(PlanCacheTest, UcqDisjunctsReuseAcrossCalls) {
  Database db = SmallGraphDb(12, 0.3, 13);
  Engine engine(db);
  // Re-parsing re-standardizes variables apart, so only the canonical keys
  // can hit across calls.
  const char* text = "ans(x) := exists y . (E(x, y) or E(y, x)).";
  auto first = engine.RunText(text).ValueOrDie();
  uint64_t misses = engine.last_stats().plan_cache.misses;
  EXPECT_GT(misses, 0u);
  auto second = engine.RunText(text).ValueOrDie();
  EXPECT_TRUE(first.EqualsAsSet(second));
  EXPECT_GT(engine.last_stats().plan_cache.hits, 0u);
  EXPECT_EQ(engine.last_stats().plan_cache.misses, misses);
}

TEST(PlanCacheTest, DatalogRuleVariantsReuseAcrossPrograms) {
  Database db = SmallGraphDb(10, 0.3, 17);
  Engine engine(db);
  const char* program =
      "tc(x, y) :- E(x, y).\n"
      "tc(x, y) :- E(x, z), tc(z, y).\n";
  auto first = engine.RunText(program).ValueOrDie();
  uint64_t misses = engine.last_stats().plan_cache.misses;
  size_t built_first = engine.last_stats().datalog.plans_built;
  EXPECT_GT(built_first, 0u);
  // Second run of the same program: every variant's first firing should be
  // served from the cross-query cache (hits grow, misses do not).
  auto second = engine.RunText(program).ValueOrDie();
  EXPECT_TRUE(first.EqualsAsSet(second));
  EXPECT_GT(engine.last_stats().plan_cache.hits, 0u);
  EXPECT_EQ(engine.last_stats().plan_cache.misses, misses);
  // The firing identity still holds on the cached run.
  const DatalogStats& ds = engine.last_stats().datalog;
  EXPECT_EQ(ds.rule_firings, ds.plans_built + ds.plan_reuses + ds.replans);
}

TEST(PlanCacheTest, DatalogRenamedRuleHitsSameEntry) {
  Database db = SmallGraphDb(10, 0.3, 19);
  Engine engine(db);
  auto first = engine.RunText(
      "p(x, y) :- E(x, y).\n"
      "p(x, y) :- E(x, z), p(z, y).\n").ValueOrDie();
  uint64_t misses = engine.last_stats().plan_cache.misses;
  // The same program with every VARIABLE renamed: rule bodies are
  // renaming-equivalent (relation names, including the recursive IDB
  // reference, must match — they are part of the signature), so all
  // variant plans hit.
  auto second = engine.RunText(
      "p(a, b) :- E(a, b).\n"
      "p(a, b) :- E(a, c), p(c, b).\n").ValueOrDie();
  EXPECT_TRUE(first.EqualsAsSet(second));
  EXPECT_GT(engine.last_stats().plan_cache.hits, 0u);
  EXPECT_EQ(engine.last_stats().plan_cache.misses, misses);
}

TEST(PlanCacheTest, Theorem2ColoringsAreCacheHits) {
  // The acceptance headline: one residual plan compiled, k^k colorings
  // executed — EngineStats must show nonzero plan_cache_hits after ONE
  // inequality query whose family has more than one coloring.
  Database db = SmallGraphDb(30, 0.15, 23);
  Engine engine(db);
  auto q = ParseConjunctive(
               "ans(a) :- E(a, b), E(b, c), a != c, a != b, b != c.")
               .ValueOrDie();
  ASSERT_TRUE(engine.Run(q).ok());
  EXPECT_GT(engine.last_stats().ineq.family_size, 1u);
  EXPECT_GT(engine.last_stats().plan_cache.hits, 0u);
  // A repeat reuses the whole compilation (another hit on the entry itself).
  uint64_t hits = engine.last_stats().plan_cache.hits;
  ASSERT_TRUE(engine.Run(q).ok());
  EXPECT_GT(engine.last_stats().plan_cache.hits, hits);
  EXPECT_GT(engine.last_stats().plan.joins, 0u);  // plan-routed for real
}

TEST(PlanCacheTest, CachedAnswersMatchUncachedAcrossRandomQueries) {
  // Differential: an engine with a shared cache vs fresh evaluation, over a
  // mixed pool of repeated acyclic/cyclic/inequality queries.
  Rng rng(29);
  Database db = SmallGraphDb(14, 0.3, 31);
  Engine cached(db);
  const char* pool[] = {
      "ans(x, z) :- E(x, y), E(y, z).",
      "ans(x) :- E(x, y), E(y, z), E(z, x).",
      "ans(a, c) :- E(a, b), E(b, c).",
      "ans(x) :- E(x, y), x != y.",
      "ans(a) :- E(a, b), E(b, c), a != c.",
      "ans(x, w) :- E(x, y), E(y, z), E(z, w).",
  };
  for (int round = 0; round < 30; ++round) {
    const char* text = pool[rng.Below(6)];
    auto q = ParseConjunctive(text).ValueOrDie();
    auto with_cache = cached.Run(q).ValueOrDie();
    Engine fresh(db);  // new engine: empty cache
    auto without = fresh.Run(q).ValueOrDie();
    EXPECT_TRUE(with_cache.EqualsAsSet(without)) << text;
  }
  EXPECT_GT(cached.last_stats().plan_cache.hits, 0u);
}

TEST(PlanCacheTest, CountingAndTupleModesNeverCrossServe) {
  // Same body text, alternating answer shapes: the cache must key on the
  // AnswerSpec (a cached tuple plan must never answer a COUNT and vice
  // versa), and repeated counting runs must hit their own entry.
  Database db = SmallGraphDb(14, 0.3, 41);
  Engine engine(db);
  auto tuples = ParseConjunctive("ans(x, z) :- E(x, y), E(y, z).").ValueOrDie();
  auto scalar = ParseConjunctive("COUNT(*) :- E(x, y), E(y, z).").ValueOrDie();
  auto grouped = ParseConjunctive("COUNT(x) :- E(x, y), E(y, z).").ValueOrDie();
  EXPECT_NE(CanonicalCqSignature(tuples), CanonicalCqSignature(scalar));
  EXPECT_NE(CanonicalCqSignature(scalar), CanonicalCqSignature(grouped));
  Relation base_tuples = engine.Run(tuples).ValueOrDie();
  Relation base_scalar = engine.Run(scalar).ValueOrDie();
  Relation base_grouped = engine.Run(grouped).ValueOrDie();
  // COUNT(*) counts assignments to ALL body variables — the full-head
  // enumeration, not the projected tuple answer.
  auto full =
      ParseConjunctive("ans(x, y, z) :- E(x, y), E(y, z).").ValueOrDie();
  Relation full_rows = engine.Run(full).ValueOrDie();
  ASSERT_EQ(base_scalar.size(), 1u);
  EXPECT_EQ(base_scalar.At(0, 0), static_cast<Value>(full_rows.size()));
  size_t misses_after_warmup = engine.last_stats().plan_cache.misses;
  for (int round = 0; round < 4; ++round) {
    EXPECT_TRUE(engine.Run(tuples).ValueOrDie().EqualsAsSet(base_tuples));
    EXPECT_TRUE(engine.Run(scalar).ValueOrDie().EqualsAsSet(base_scalar));
    EXPECT_TRUE(engine.Run(grouped).ValueOrDie().EqualsAsSet(base_grouped));
  }
  // Alternation after warm-up is pure hits: three distinct entries, no
  // cross-shape stomping.
  EXPECT_EQ(engine.last_stats().plan_cache.misses, misses_after_warmup);
  EXPECT_GT(engine.last_stats().plan_cache.hits, 0u);
}

TEST(PlanCacheTest, ParallelUcqSharesCacheSafely) {
  // Concurrent disjunct evaluation all consults one cache (mutex-guarded);
  // results must stay byte-identical to sequential, warm or cold.
  Database db = SmallGraphDb(40, 0.2, 37);
  auto q = ParseFirstOrder(
               "ans(x) := exists y . (E(x, y) or E(y, x) or "
               "(exists z . (E(x, z) and E(z, y)))).")
               .ValueOrDie();
  EngineOptions seq_options;
  Engine sequential(db, seq_options);
  auto expected = sequential.Run(q).ValueOrDie();
  EngineOptions par_options;
  par_options.threads = 4;
  Engine parallel(db, par_options);
  for (int round = 0; round < 3; ++round) {
    auto got = parallel.Run(q).ValueOrDie();
    EXPECT_TRUE(expected.EqualsAsSet(got)) << "round " << round;
  }
  EXPECT_GT(parallel.last_stats().plan_cache.hits, 0u);
}

}  // namespace
}  // namespace paraquery

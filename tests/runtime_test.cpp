// Tests for the parallel runtime (src/runtime/): scheduler mechanics
// (nesting, cancellation, error capture, clean shutdown), morsel-parallel
// operator equivalence with the sequential kernels, and the headline
// guarantee — engine results at N threads are byte-identical to 1 thread
// across randomized CQ/UCQ/Datalog workloads, with resource limits still
// enforced under concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "core/engine.hpp"
#include "plan/executor.hpp"
#include "query/parser.hpp"
#include "relational/ops.hpp"
#include "relational/row_index.hpp"
#include "runtime/parallel_ops.hpp"
#include "runtime/scheduler.hpp"
#include "workload/generators.hpp"

namespace paraquery {
namespace {

// ---------------------------------------------------------------------------
// Scheduler mechanics.
// ---------------------------------------------------------------------------

TEST(TaskSchedulerTest, ParallelChunksCoversEveryIndexOnce) {
  TaskScheduler scheduler(4);
  std::vector<std::atomic<int>> hits(1000);
  RuntimeOptions runtime{&scheduler, 16};
  size_t chunks = ParallelChunks(runtime.scheduler, hits.size(), 16,
                                 [&](size_t, size_t begin, size_t end) {
                                   for (size_t i = begin; i < end; ++i) {
                                     hits[i].fetch_add(1);
                                   }
                                 });
  EXPECT_EQ(chunks, ChunkCount(hits.size(), 16));
  for (const std::atomic<int>& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(TaskSchedulerTest, NestedGroupsComplete) {
  TaskScheduler scheduler(4);
  std::atomic<int> total{0};
  TaskGroup outer(&scheduler);
  for (int i = 0; i < 8; ++i) {
    outer.Spawn([&scheduler, &total] {
      TaskGroup inner(&scheduler);
      for (int j = 0; j < 8; ++j) {
        inner.Spawn([&total] { total.fetch_add(1); });
      }
      inner.Wait();
    });
  }
  outer.Wait();
  EXPECT_EQ(total.load(), 64);
}

TEST(TaskSchedulerTest, RecordErrorKeepsFirstAndCancels) {
  TaskScheduler scheduler(2);
  TaskGroup group(&scheduler);
  group.RecordError(Status::ResourceExhausted("first"));
  group.RecordError(Status::Internal("second"));
  EXPECT_TRUE(group.cancelled());
  // Cancelled tasks are dropped without running.
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    group.Spawn([&ran] { ran.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(group.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(group.status().message(), "first");
}

TEST(TaskSchedulerTest, CleanShutdownAfterErrors) {
  // Pools torn down right after error-path work must not hang or leak
  // wakeups: exercise construct → fail → destruct repeatedly.
  for (int round = 0; round < 10; ++round) {
    TaskScheduler scheduler(4);
    TaskGroup group(&scheduler);
    for (int i = 0; i < 32; ++i) {
      group.Spawn([&group, i] {
        if (i % 3 == 0) {
          group.RecordError(Status::Internal("task failed"));
        }
      });
    }
    group.Wait();
    EXPECT_FALSE(group.status().ok());
  }  // scheduler destructor joins the workers every round
}

TEST(TaskSchedulerTest, NullAndWidthOneRunInline) {
  int ran = 0;
  TaskGroup null_group(nullptr);
  null_group.Spawn([&ran] { ++ran; });
  EXPECT_EQ(ran, 1);  // already ran: Spawn is inline without a scheduler
  TaskScheduler one(1);
  TaskGroup one_group(&one);
  one_group.Spawn([&ran] { ++ran; });
  EXPECT_EQ(ran, 2);
}

// ---------------------------------------------------------------------------
// Morsel-parallel operators vs the sequential kernels.
// ---------------------------------------------------------------------------

NamedRelation RandomRelation(std::vector<AttrId> attrs, size_t rows,
                             Value domain, uint64_t seed) {
  Rng rng(seed);
  NamedRelation out{std::move(attrs)};
  ValueVec row(out.arity());
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < out.arity(); ++c) {
      row[c] = rng.Range(0, domain - 1);
    }
    out.rel().Add(row);
  }
  return out;
}

// Byte-identical: same attrs, same rows in the same order.
void ExpectIdentical(const NamedRelation& a, const NamedRelation& b) {
  ASSERT_EQ(a.attrs(), b.attrs());
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.rel().data(), b.rel().data());
}

TEST(ParallelOpsTest, OperatorsMatchSequentialKernels) {
  TaskScheduler scheduler(4);
  RuntimeOptions runtime{&scheduler, /*morsel_rows=*/64};
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    NamedRelation left = RandomRelation({0, 1}, 700, 40, seed);
    NamedRelation right = RandomRelation({1, 2}, 500, 40, seed + 100);

    Predicate pred;
    pred.Add(Constraint::NeqCols(0, 1));
    pred.Add(Constraint::LtConst(0, 30));
    ExpectIdentical(ParallelSelect(left, pred, runtime), Select(left, pred));

    ExpectIdentical(ParallelProject(left, {1}, /*dedup=*/true, runtime),
                    Project(left, {1}, /*dedup=*/true));
    ExpectIdentical(ParallelProject(left, {1, 0}, /*dedup=*/false, runtime),
                    Project(left, {1, 0}, /*dedup=*/false));

    RowIndex idx(right.rel(), JoinKeyColumns(left, right));
    ExpectIdentical(ParallelJoin(left, right, idx, runtime),
                    NaturalJoin(left, right, idx).ValueOrDie());

    ExpectIdentical(ParallelSemijoin(left, right, runtime),
                    Semijoin(left, right));
    // All-survivors path stays zero-copy.
    NamedRelation all = ParallelSemijoin(left, left.WithAttrs({0, 1}),
                                         runtime);
    EXPECT_TRUE(all.rel().SharesStorageWith(left.rel()));
  }
}

// ---------------------------------------------------------------------------
// Determinism: engine results at N threads == 1 thread, byte for byte.
// ---------------------------------------------------------------------------

Engine MakeEngine(const Database& db, size_t threads) {
  EngineOptions options;
  options.threads = threads;
  options.morsel_rows = 32;  // small morsels so tiny test inputs parallelize
  return Engine(db, options);
}

void ExpectSameRelation(const Relation& a, const Relation& b) {
  ASSERT_EQ(a.arity(), b.arity());
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.data(), b.data());
}

TEST(RuntimeDeterminismTest, RandomizedCqWorkloads) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Database db = RandomBinaryDatabase(3, 120, 25, seed);
    for (int neq = 0; neq <= 2; ++neq) {
      ConjunctiveQuery q = RandomAcyclicNeqQuery(3, 4, neq, seed * 13 + neq);
      auto sequential = MakeEngine(db, 1).Run(q);
      auto parallel = MakeEngine(db, 4).Run(q);
      ASSERT_TRUE(sequential.ok()) << sequential.status();
      ASSERT_TRUE(parallel.ok()) << parallel.status();
      ExpectSameRelation(sequential.value(), parallel.value());
    }
  }
}

TEST(RuntimeDeterminismTest, CyclicCqWorkloads) {
  Database db = RandomBinaryDatabase(1, 300, 18, 7);
  const char* queries[] = {
      "ans(x) :- R0(x,y), R0(y,z), R0(z,x).",
      "ans(x, w) :- R0(x,y), R0(y,z), R0(z,w), R0(w,x), x != z.",
      "p() :- R0(x,y), R0(y,z), R0(z,x), x != y, y != z.",
  };
  for (const char* text : queries) {
    auto q = ParseConjunctive(text).ValueOrDie();
    auto sequential = MakeEngine(db, 1).Run(q);
    auto parallel = MakeEngine(db, 4).Run(q);
    ASSERT_TRUE(sequential.ok()) << sequential.status();
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    ExpectSameRelation(sequential.value(), parallel.value());
  }
}

TEST(RuntimeDeterminismTest, UcqWorkloads) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Database db = RandomBinaryDatabase(2, 150, 20, seed);
    const char* queries[] = {
        "ans(x) := exists y . (R0(x, y) or R1(y, x) or R0(y, x)).",
        "ans(x, y) := R0(x, y) or (exists z . (R0(x, z) and R1(z, y))).",
    };
    for (const char* text : queries) {
      auto sequential = MakeEngine(db, 1).RunText(text);
      auto parallel = MakeEngine(db, 4).RunText(text);
      ASSERT_TRUE(sequential.ok()) << sequential.status();
      ASSERT_TRUE(parallel.ok()) << parallel.status();
      ExpectSameRelation(sequential.value(), parallel.value());
    }
  }
}

TEST(RuntimeDeterminismTest, DatalogWorkloads) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Database db = RandomBinaryDatabase(1, 90, 30, seed);
    // TransitiveClosureProgram expects the edge relation to be named E.
    Database edges;
    RelId e = edges.AddRelation("E", 2).ValueOrDie();
    const Relation& r0 = db.relation(0);
    for (size_t r = 0; r < r0.size(); ++r) edges.relation(e).Add(r0.Row(r));

    auto sequential = MakeEngine(edges, 1).Run(TransitiveClosureProgram());
    auto parallel = MakeEngine(edges, 4).Run(TransitiveClosureProgram());
    ASSERT_TRUE(sequential.ok()) << sequential.status();
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    ExpectSameRelation(sequential.value(), parallel.value());

    // A multi-rule program whose per-round firings actually overlap.
    const char* program =
        "p(x, y) :- E(x, y).\n"
        "q(x, y) :- E(y, x).\n"
        "p(x, y) :- p(x, z), q(y, z).\n"
        "q(x, y) :- q(x, z), p(z, y).\n"
        "@goal p.\n";
    auto seq2 = MakeEngine(edges, 1).RunText(program);
    auto par2 = MakeEngine(edges, 4).RunText(program);
    ASSERT_TRUE(seq2.ok()) << seq2.status();
    ASSERT_TRUE(par2.ok()) << par2.status();
    ExpectSameRelation(seq2.value(), par2.value());
  }
}

TEST(RuntimeDeterminismTest, ParallelRunsReportRuntimeStats) {
  Database db = RandomBinaryDatabase(1, 500, 10, 3);
  Engine engine = MakeEngine(db, 4);
  auto q = ParseConjunctive("ans(x, z) :- R0(x, y), R0(y, z).").ValueOrDie();
  ASSERT_TRUE(engine.Run(q).ok());
  EXPECT_GT(engine.last_stats().plan.morsels, 0u);
  EXPECT_GT(engine.last_stats().plan.parallel_tasks, 0u);
  EXPECT_GT(engine.last_stats().plan.wall_seconds, 0.0);
}

// ---------------------------------------------------------------------------
// Limits under concurrency; shutdown on error paths.
// ---------------------------------------------------------------------------

TEST(RuntimeLimitsTest, StepLimitFiresUnderConcurrency) {
  Database db = GraphDatabase(CompleteGraph(18));
  EngineOptions options;
  options.threads = 4;
  options.morsel_rows = 32;
  options.limits.max_steps = 100;
  Engine engine(db, options);
  auto q = ParseConjunctive("ans(a, d) :- E(a,b), E(b,c), E(c,d).")
               .ValueOrDie();
  EXPECT_EQ(engine.Run(q).status().code(), StatusCode::kResourceExhausted);
}

TEST(RuntimeLimitsTest, DatalogRowLimitFiresUnderConcurrency) {
  Database db = GraphDatabase(CompleteGraph(12));
  EngineOptions options;
  options.threads = 4;
  options.limits.max_rows = 20;
  Engine engine(db, options);
  auto result = engine.RunText(
      "tc(x, y) :- E(x, y).\n"
      "tc(x, y) :- E(x, z), tc(z, y).\n");
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

// The speculative-limits accounting fix: the right subtree of a join runs
// speculatively under a scheduler before the left side's emptiness is
// known, but its rows are charged TENTATIVELY and dropped when the
// short-circuit fires — so a query that passes limits at threads=1 never
// fails them at threads=N.
TEST(RuntimeLimitsTest, SpeculativeWorkIsNotChargedOnShortCircuit) {
  // Plan: HashJoin( Scan(empty), HashJoin(Scan(B1), Scan(B2)) ).
  // Sequentially the big right join never runs (left is empty) and the
  // execution produces 0 rows; speculatively it produces ~400 rows, far
  // past max_steps = 50.
  NamedRelation empty({0});
  NamedRelation b1({1, 2});
  NamedRelation b2({2, 3});
  for (Value v = 0; v < 20; ++v) {
    for (Value w = 0; w < 20; ++w) b1.rel().Add({v, w});
    b2.rel().Add({v, v});
  }
  // The Project above the join accounts AFTER the short-circuit: before the
  // fix it saw the speculative 400 rows in the shared budget and errored.
  auto make_plan = [&] {
    return MakeProject(
        MakeHashJoin(
            MakeScan(0, {0}, "empty", 0.0),
            MakeHashJoin(MakeScan(1, {1, 2}, "B1", 400.0),
                         MakeScan(2, {2, 3}, "B2", 20.0))),
        {0}, /*dedup=*/false);
  };
  std::vector<const NamedRelation*> inputs = {&empty, &b1, &b2};
  ResourceLimits limits;
  limits.max_steps = 50;

  // threads = 1: the short-circuit skips the right join entirely.
  {
    PlanNodePtr plan = make_plan();
    ExecContext ctx{inputs, limits, nullptr, RuntimeOptions{}};
    auto result = ExecutePlan(*plan, ctx);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE(result.value().empty());
  }
  // threads = 4: the right join runs speculatively; its ~400 rows must be
  // rolled back, not charged (this failed before the accounting fix).
  TaskScheduler scheduler(4);
  for (int rep = 0; rep < 10; ++rep) {
    PlanNodePtr plan = make_plan();
    RuntimeOptions runtime{&scheduler, /*morsel_rows=*/64};
    PlanStats stats;
    ExecContext ctx{inputs, limits, &stats, runtime};
    auto result = ExecutePlan(*plan, ctx);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE(result.value().empty());
  }
}

TEST(RuntimeLimitsTest, CommittedSpeculativeWorkStillCounts) {
  // Same shape but the left side is NONEMPTY: the speculative subtree's
  // rows must be committed once consumed, and the limit must fire at every
  // width (the fix must not turn limits off).
  NamedRelation left({0, 1});
  left.rel().Add({0, 0});
  NamedRelation b1({1, 2});
  NamedRelation b2({2, 3});
  for (Value v = 0; v < 20; ++v) {
    for (Value w = 0; w < 20; ++w) b1.rel().Add({v, w});
    b2.rel().Add({v, v});
  }
  auto make_plan = [&] {
    return MakeHashJoin(
        MakeScan(0, {0, 1}, "L", 1.0),
        MakeHashJoin(MakeScan(1, {1, 2}, "B1", 400.0),
                     MakeScan(2, {2, 3}, "B2", 20.0)));
  };
  std::vector<const NamedRelation*> inputs = {&left, &b1, &b2};
  ResourceLimits limits;
  limits.max_steps = 50;
  {
    PlanNodePtr plan = make_plan();
    ExecContext ctx{inputs, limits, nullptr, RuntimeOptions{}};
    EXPECT_EQ(ExecutePlan(*plan, ctx).status().code(),
              StatusCode::kResourceExhausted);
  }
  TaskScheduler scheduler(4);
  {
    PlanNodePtr plan = make_plan();
    RuntimeOptions runtime{&scheduler, /*morsel_rows=*/64};
    ExecContext ctx{inputs, limits, nullptr, runtime};
    EXPECT_EQ(ExecutePlan(*plan, ctx).status().code(),
              StatusCode::kResourceExhausted);
  }
}

// Engine-level acceptance shape: a query whose plan contains an empty-left
// join with an expensive sibling passes tight limits at threads=1, so it
// must pass at threads=4 as well.
TEST(RuntimeLimitsTest, PassingQueryPassesAtAnyWidth) {
  Database db;
  RelId a = db.AddRelation("A", 2).ValueOrDie();
  RelId big = db.AddRelation("BIG", 2).ValueOrDie();
  (void)a;  // A stays empty
  for (Value v = 0; v < 40; ++v) {
    for (Value w = 0; w < 10; ++w) db.relation(big).Add({v, w});
  }
  // Cyclic-planner route (the order comparison forces it; ≠ alone would
  // route to color coding, which legitimately joins the BIG atoms before
  // consulting A): greedy order starts from the smallest (empty) atom, so
  // sequential execution is all short-circuit.
  auto q = ParseConjunctive(
               "ans(x) :- A(x, y), BIG(y, z), BIG(z, w), x < w.")
               .ValueOrDie();
  for (size_t threads : {size_t{1}, size_t{4}}) {
    EngineOptions options;
    options.threads = threads;
    options.morsel_rows = 16;
    options.limits.max_steps = 30;
    Engine engine(db, options);
    auto result = engine.Run(q);
    ASSERT_TRUE(result.ok())
        << "threads=" << threads << ": " << result.status();
    EXPECT_TRUE(result.value().empty());
  }
}

// Shared-DAG stress for the speculative accounting: the Theorem 2 eval DAG
// shares its pass-1 nodes between the committed left spine and speculative
// right subtrees, so a speculative budget error must never be cached into a
// node a committed consumer will read (the executor recomputes instead).
// Property: ANY max_steps that passes at threads=1 passes at threads=4.
TEST(RuntimeLimitsTest, SharedNodeSpeculationCannotPoisonLimits) {
  Database db = GraphDatabase(GnpRandom(60, 0.08, 9));
  auto q = ParseConjunctive(
               "ans(a, d) :- E(a, b), E(b, c), E(c, d), a != c, b != d.")
               .ValueOrDie();
  for (uint64_t steps : {uint64_t{30}, uint64_t{100}, uint64_t{400},
                         uint64_t{2000}, uint64_t{20000}}) {
    EngineOptions options;
    options.threads = 1;
    options.limits.max_steps = steps;
    Engine sequential(db, options);
    if (!sequential.Run(q).ok()) continue;  // fails sequentially too: fine
    options.threads = 4;
    options.morsel_rows = 16;
    Engine parallel(db, options);
    for (int rep = 0; rep < 5; ++rep) {
      auto result = parallel.Run(q);
      EXPECT_TRUE(result.ok())
          << "max_steps=" << steps << " rep=" << rep << ": "
          << result.status();
    }
  }
}

TEST(RuntimeLimitsTest, EngineSurvivesRepeatedErrorRuns) {
  // Error paths must leave the pool reusable and tear down cleanly when the
  // engine dies (the scheduler is owned by the engine).
  Database db = GraphDatabase(CompleteGraph(18));
  EngineOptions options;
  options.threads = 4;
  options.morsel_rows = 32;
  options.limits.max_steps = 50;
  auto q = ParseConjunctive("ans(a, d) :- E(a,b), E(b,c), E(c,d).")
               .ValueOrDie();
  for (int i = 0; i < 5; ++i) {
    Engine engine(db, options);
    EXPECT_EQ(engine.Run(q).status().code(), StatusCode::kResourceExhausted);
    engine.options().limits.max_steps = 0;
    EXPECT_TRUE(engine.Run(q).ok());  // the same pool keeps working
  }
}

}  // namespace
}  // namespace paraquery

// Failure injection and edge cases: every engine must degrade into a clean
// Status, never a crash or a wrong answer.
#include <gtest/gtest.h>

#include <limits>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "eval/acyclic.hpp"
#include "eval/datalog_eval.hpp"
#include "eval/fo.hpp"
#include "eval/inequality.hpp"
#include "eval/naive.hpp"
#include "graph/generators.hpp"
#include "hashing/coloring.hpp"
#include "hypergraph/hypergraph.hpp"
#include "query/parser.hpp"
#include "relational/named_relation.hpp"
#include "relational/predicate.hpp"
#include "workload/generators.hpp"

namespace paraquery {
namespace {

TEST(RobustnessTest, MissingRelationIsNotFoundEverywhere) {
  Database db;
  db.AddRelation("A", 1).ValueOrDie();
  auto q = ParseConjunctive("p() :- Ghost(x).").ValueOrDie();
  EXPECT_EQ(NaiveCqNonempty(db, q).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(AcyclicNonempty(db, q).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(IneqNonempty(db, q).status().code(), StatusCode::kNotFound);
  Engine engine(db);
  EXPECT_EQ(engine.Run(q).status().code(), StatusCode::kNotFound);
}

TEST(RobustnessTest, ArityMismatchRejected) {
  Database db;
  db.AddRelation("R", 2).ValueOrDie();
  auto q = ParseConjunctive("p() :- R(x).").ValueOrDie();
  EXPECT_FALSE(NaiveCqNonempty(db, q).ok());
  EXPECT_FALSE(AcyclicNonempty(db, q).ok());
}

TEST(RobustnessTest, EmptyDatabaseEverywhere) {
  Database db;
  db.AddRelation("E", 2).ValueOrDie();
  auto q = ParseConjunctive("ans(x, y) :- E(x, y).").ValueOrDie();
  EXPECT_TRUE(NaiveEvaluateCq(db, q).ValueOrDie().empty());
  EXPECT_TRUE(AcyclicEvaluate(db, q).ValueOrDie().empty());
  EXPECT_TRUE(IneqEvaluate(db, q).ValueOrDie().empty());
  auto prog = ParseDatalog("tc(x,y) :- E(x,y). tc(x,y) :- E(x,z), tc(z,y).")
                  .ValueOrDie();
  EXPECT_TRUE(EvaluateDatalog(db, prog).ValueOrDie().empty());
}

TEST(RobustnessTest, ExtremeValuesSurviveHashingAndJoins) {
  Database db;
  RelId r = db.AddRelation("R", 2).ValueOrDie();
  Value lo = std::numeric_limits<Value>::min();
  Value hi = std::numeric_limits<Value>::max();
  db.relation(r).Add({lo, hi});
  db.relation(r).Add({hi, lo});
  db.relation(r).Add({0, lo});
  auto q = ParseConjunctive("ans(x, z) :- R(x, y), R(y, z), x != z.")
               .ValueOrDie();
  IneqOptions certified;
  certified.driver = IneqOptions::Driver::kCertified;
  auto fpt = IneqEvaluate(db, q, certified).ValueOrDie();
  auto naive = NaiveEvaluateCq(db, q).ValueOrDie();
  EXPECT_TRUE(fpt.EqualsAsSet(naive));
}

TEST(RobustnessTest, ParserNeverCrashesOnGarbage) {
  const char* cases[] = {
      "", ".", ":-", "ans(", "ans(x) :-", "ans(x) :- R(x",
      "ans(x) :- R(x))", "ans(x) := exists", "p() := not", "@goal",
      "p() :- R(x), !", "p() :- R(x) R(y).", "((((", "p(x :- y)",
      "ans(x) := forall . E(x, x).", "p() :- 5(x).",
      "p() := exists and . E(and, or).",
  };
  for (const char* text : cases) {
    auto cq = ParseConjunctive(text);
    auto fo = ParseFirstOrder(text);
    auto dl = ParseDatalog(text);
    EXPECT_FALSE(cq.ok() && fo.ok() && dl.ok()) << text;
    // No crash is the actual assertion; statuses carry messages.
    if (!cq.ok()) {
      EXPECT_FALSE(cq.status().message().empty());
    }
  }
}

TEST(RobustnessTest, ParserFuzzMutations) {
  Rng rng(31337);
  std::string base = "ans(x, y) :- R(x, z), S(z, y), x != y, z < 5.";
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = base;
    int edits = 1 + static_cast<int>(rng.Below(4));
    for (int e = 0; e < edits; ++e) {
      size_t pos = rng.Below(mutated.size());
      char c = static_cast<char>(32 + rng.Below(95));
      if (rng.Chance(0.3)) {
        mutated.erase(pos, 1);
      } else {
        mutated[pos] = c;
      }
      if (mutated.empty()) break;
    }
    auto result = ParseConjunctive(mutated);  // must not crash
    if (result.ok()) {
      EXPECT_TRUE(result.value().Validate().ok()) << mutated;
    }
  }
}

TEST(RobustnessTest, RowLimitsSurfaceAsResourceExhausted) {
  Database db = GraphDatabase(CompleteGraph(40));
  auto q = ParseConjunctive("ans(a, c) :- E(a, b), E(b, c).").ValueOrDie();
  AcyclicOptions tight;
  tight.max_rows = 100;
  EXPECT_EQ(AcyclicEvaluate(db, q, tight).status().code(),
            StatusCode::kResourceExhausted);
  IneqOptions itight;
  itight.max_rows = 100;
  itight.driver = IneqOptions::Driver::kMonteCarlo;
  auto q2 = ParseConjunctive("ans(a, c) :- E(a, b), E(b, c), a != c.")
                .ValueOrDie();
  EXPECT_EQ(IneqEvaluate(db, q2, itight).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(RobustnessTest, CertifiedDriverFailsCleanlyOnHugeDomain) {
  // 5 inequality variables over a large domain: certification infeasible
  // within the given budget; the driver must report, not hang.
  Database db = RandomBinaryDatabase(1, 2000, 100000, 3);
  ConjunctiveQuery q = RandomAcyclicNeqQuery(1, 5, 6, 3);
  IneqOptions certified;
  certified.driver = IneqOptions::Driver::kCertified;
  certified.certified_max_subsets = 1000;
  auto result = IneqNonempty(db, q, certified);
  if (!result.ok()) {
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  }
}

TEST(RobustnessTest, CertifiedFamilyDeterministicInSeed) {
  std::vector<Value> ground;
  for (Value v = 0; v < 20; ++v) ground.push_back(v * 101);
  auto a = ColoringFamily::Certified(ground, 3, 42).ValueOrDie();
  auto b = ColoringFamily::Certified(ground, 3, 42).ValueOrDie();
  ASSERT_EQ(a.size(), b.size());
  for (size_t m = 0; m < a.size(); ++m) {
    for (Value v : ground) EXPECT_EQ(a.Color(m, v), b.Color(m, v));
  }
}

TEST(RobustnessTest, DictionaryOddStrings) {
  Dictionary d;
  Value empty = d.Intern("");
  Value spaces = d.Intern("  ");
  Value unicode = d.Intern("héllo wörld");
  EXPECT_NE(empty, spaces);
  EXPECT_EQ(d.Lookup(unicode), "héllo wörld");
  EXPECT_EQ(d.Intern(""), empty);
}

TEST(RobustnessTest, ToStringSmoke) {
  Relation r(2);
  r.Add({1, 2});
  EXPECT_EQ(r.ToString(), "{(1,2)}");
  NamedRelation nr({7, 8}, r);
  EXPECT_EQ(nr.ToString(), "[7,8]{(1,2)}");
  Predicate p;
  p.Add(Constraint::LtCols(0, 1));
  p.Add(Constraint::NeqConst(0, 5));
  EXPECT_EQ(p.ToString(), "$0<$1 AND $0!=5");
  Hypergraph h(3);
  h.AddEdge({0, 1});
  EXPECT_EQ(h.ToString(), "H(V=3; {0,1})");
}

TEST(RobustnessTest, SelfJoinHeavyQuery) {
  // The same relation appearing five times with overlapping variables.
  Database db = GraphDatabase(GnpRandom(10, 0.4, 8));
  auto q = ParseConjunctive(
               "ans(a) :- E(a, b), E(b, a), E(a, c), E(c, a), E(b, c).")
               .ValueOrDie();
  auto naive = NaiveEvaluateCq(db, q).ValueOrDie();
  // Cyclic query: engine should still produce the same result via naive.
  Engine engine(db);
  auto via_engine = engine.Run(q).ValueOrDie();
  EXPECT_TRUE(via_engine.EqualsAsSet(naive));
}

TEST(RobustnessTest, DuplicateAtomsAndComparisons) {
  Database db = GraphDatabase(PathGraph(4));
  auto q = ParseConjunctive(
               "ans(x, y) :- E(x, y), E(x, y), E(x, y), x != y, x != y.")
               .ValueOrDie();
  IneqOptions certified;
  certified.driver = IneqOptions::Driver::kCertified;
  auto fpt = IneqEvaluate(db, q, certified).ValueOrDie();
  auto naive = NaiveEvaluateCq(db, q).ValueOrDie();
  EXPECT_TRUE(fpt.EqualsAsSet(naive));
}

TEST(RobustnessTest, HeadConstantsAndRepeatedHeadVars) {
  Database db = GraphDatabase(PathGraph(4));
  auto q = ParseConjunctive("ans(x, x, 42) :- E(x, y).").ValueOrDie();
  auto out = NaiveEvaluateCq(db, q).ValueOrDie();
  for (size_t r = 0; r < out.size(); ++r) {
    EXPECT_EQ(out.At(r, 0), out.At(r, 1));
    EXPECT_EQ(out.At(r, 2), 42);
  }
  auto acyclic = AcyclicEvaluate(db, q).ValueOrDie();
  EXPECT_TRUE(acyclic.EqualsAsSet(out));
}

TEST(RobustnessTest, DatalogDeepRecursionTerminates) {
  // A long chain: TC needs many iterations but must terminate.
  Database db;
  RelId e = db.AddRelation("E", 2).ValueOrDie();
  for (Value v = 0; v < 200; ++v) db.relation(e).Add({v, v + 1});
  DatalogStats stats;
  auto out =
      EvaluateDatalog(db, TransitiveClosureProgram(), {}, &stats).ValueOrDie();
  EXPECT_EQ(out.size(), 200u * 201u / 2u);
  EXPECT_GT(stats.iterations, 2u);
}

TEST(RobustnessTest, FoWithConstantsInAtoms) {
  Database db = GraphDatabase(PathGraph(4));
  auto q = ParseFirstOrder("ans(x) := E(0, x) or E(x, 3).").ValueOrDie();
  auto out = EvaluateFirstOrder(db, q).ValueOrDie();
  EXPECT_TRUE(out.Contains(std::vector<Value>{1}));  // E(0,1)
  EXPECT_TRUE(out.Contains(std::vector<Value>{2}));  // E(2,3)
}

}  // namespace
}  // namespace paraquery

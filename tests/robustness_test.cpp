// Failure injection and edge cases: every engine must degrade into a clean
// Status, never a crash or a wrong answer.
#include <gtest/gtest.h>

#include <chrono>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.hpp"
#include "common/query_context.hpp"
#include "common/rng.hpp"
#include "core/engine.hpp"
#include "eval/acyclic.hpp"
#include "eval/datalog_eval.hpp"
#include "eval/fo.hpp"
#include "eval/inequality.hpp"
#include "eval/naive.hpp"
#include "graph/generators.hpp"
#include "hashing/coloring.hpp"
#include "hypergraph/hypergraph.hpp"
#include "query/parser.hpp"
#include "relational/csv.hpp"
#include "relational/named_relation.hpp"
#include "relational/predicate.hpp"
#include "workload/generators.hpp"

namespace paraquery {
namespace {

TEST(RobustnessTest, MissingRelationIsNotFoundEverywhere) {
  Database db;
  db.AddRelation("A", 1).ValueOrDie();
  auto q = ParseConjunctive("p() :- Ghost(x).").ValueOrDie();
  EXPECT_EQ(NaiveCqNonempty(db, q).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(AcyclicNonempty(db, q).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(IneqNonempty(db, q).status().code(), StatusCode::kNotFound);
  Engine engine(db);
  EXPECT_EQ(engine.Run(q).status().code(), StatusCode::kNotFound);
}

TEST(RobustnessTest, ArityMismatchRejected) {
  Database db;
  db.AddRelation("R", 2).ValueOrDie();
  auto q = ParseConjunctive("p() :- R(x).").ValueOrDie();
  EXPECT_FALSE(NaiveCqNonempty(db, q).ok());
  EXPECT_FALSE(AcyclicNonempty(db, q).ok());
}

TEST(RobustnessTest, EmptyDatabaseEverywhere) {
  Database db;
  db.AddRelation("E", 2).ValueOrDie();
  auto q = ParseConjunctive("ans(x, y) :- E(x, y).").ValueOrDie();
  EXPECT_TRUE(NaiveEvaluateCq(db, q).ValueOrDie().empty());
  EXPECT_TRUE(AcyclicEvaluate(db, q).ValueOrDie().empty());
  EXPECT_TRUE(IneqEvaluate(db, q).ValueOrDie().empty());
  auto prog = ParseDatalog("tc(x,y) :- E(x,y). tc(x,y) :- E(x,z), tc(z,y).")
                  .ValueOrDie();
  EXPECT_TRUE(EvaluateDatalog(db, prog).ValueOrDie().empty());
}

TEST(RobustnessTest, ExtremeValuesSurviveHashingAndJoins) {
  Database db;
  RelId r = db.AddRelation("R", 2).ValueOrDie();
  Value lo = std::numeric_limits<Value>::min();
  Value hi = std::numeric_limits<Value>::max();
  db.relation(r).Add({lo, hi});
  db.relation(r).Add({hi, lo});
  db.relation(r).Add({0, lo});
  auto q = ParseConjunctive("ans(x, z) :- R(x, y), R(y, z), x != z.")
               .ValueOrDie();
  IneqOptions certified;
  certified.driver = IneqOptions::Driver::kCertified;
  auto fpt = IneqEvaluate(db, q, certified).ValueOrDie();
  auto naive = NaiveEvaluateCq(db, q).ValueOrDie();
  EXPECT_TRUE(fpt.EqualsAsSet(naive));
}

TEST(RobustnessTest, ParserNeverCrashesOnGarbage) {
  const char* cases[] = {
      "", ".", ":-", "ans(", "ans(x) :-", "ans(x) :- R(x",
      "ans(x) :- R(x))", "ans(x) := exists", "p() := not", "@goal",
      "p() :- R(x), !", "p() :- R(x) R(y).", "((((", "p(x :- y)",
      "ans(x) := forall . E(x, x).", "p() :- 5(x).",
      "p() := exists and . E(and, or).",
  };
  for (const char* text : cases) {
    auto cq = ParseConjunctive(text);
    auto fo = ParseFirstOrder(text);
    auto dl = ParseDatalog(text);
    EXPECT_FALSE(cq.ok() && fo.ok() && dl.ok()) << text;
    // No crash is the actual assertion; statuses carry messages.
    if (!cq.ok()) {
      EXPECT_FALSE(cq.status().message().empty());
    }
  }
}

TEST(RobustnessTest, ParserFuzzMutations) {
  Rng rng(31337);
  std::string base = "ans(x, y) :- R(x, z), S(z, y), x != y, z < 5.";
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = base;
    int edits = 1 + static_cast<int>(rng.Below(4));
    for (int e = 0; e < edits; ++e) {
      size_t pos = rng.Below(mutated.size());
      char c = static_cast<char>(32 + rng.Below(95));
      if (rng.Chance(0.3)) {
        mutated.erase(pos, 1);
      } else {
        mutated[pos] = c;
      }
      if (mutated.empty()) break;
    }
    auto result = ParseConjunctive(mutated);  // must not crash
    if (result.ok()) {
      EXPECT_TRUE(result.value().Validate().ok()) << mutated;
    }
  }
}

TEST(RobustnessTest, RowLimitsSurfaceAsResourceExhausted) {
  Database db = GraphDatabase(CompleteGraph(40));
  auto q = ParseConjunctive("ans(a, c) :- E(a, b), E(b, c).").ValueOrDie();
  AcyclicOptions tight;
  tight.max_rows = 100;
  EXPECT_EQ(AcyclicEvaluate(db, q, tight).status().code(),
            StatusCode::kResourceExhausted);
  IneqOptions itight;
  itight.max_rows = 100;
  itight.driver = IneqOptions::Driver::kMonteCarlo;
  auto q2 = ParseConjunctive("ans(a, c) :- E(a, b), E(b, c), a != c.")
                .ValueOrDie();
  EXPECT_EQ(IneqEvaluate(db, q2, itight).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(RobustnessTest, CertifiedDriverFailsCleanlyOnHugeDomain) {
  // 5 inequality variables over a large domain: certification infeasible
  // within the given budget; the driver must report, not hang.
  Database db = RandomBinaryDatabase(1, 2000, 100000, 3);
  ConjunctiveQuery q = RandomAcyclicNeqQuery(1, 5, 6, 3);
  IneqOptions certified;
  certified.driver = IneqOptions::Driver::kCertified;
  certified.certified_max_subsets = 1000;
  auto result = IneqNonempty(db, q, certified);
  if (!result.ok()) {
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  }
}

TEST(RobustnessTest, CertifiedFamilyDeterministicInSeed) {
  std::vector<Value> ground;
  for (Value v = 0; v < 20; ++v) ground.push_back(v * 101);
  auto a = ColoringFamily::Certified(ground, 3, 42).ValueOrDie();
  auto b = ColoringFamily::Certified(ground, 3, 42).ValueOrDie();
  ASSERT_EQ(a.size(), b.size());
  for (size_t m = 0; m < a.size(); ++m) {
    for (Value v : ground) EXPECT_EQ(a.Color(m, v), b.Color(m, v));
  }
}

TEST(RobustnessTest, DictionaryOddStrings) {
  Dictionary d;
  Value empty = d.Intern("");
  Value spaces = d.Intern("  ");
  Value unicode = d.Intern("héllo wörld");
  EXPECT_NE(empty, spaces);
  EXPECT_EQ(d.Lookup(unicode), "héllo wörld");
  EXPECT_EQ(d.Intern(""), empty);
}

TEST(RobustnessTest, ToStringSmoke) {
  Relation r(2);
  r.Add({1, 2});
  EXPECT_EQ(r.ToString(), "{(1,2)}");
  NamedRelation nr({7, 8}, r);
  EXPECT_EQ(nr.ToString(), "[7,8]{(1,2)}");
  Predicate p;
  p.Add(Constraint::LtCols(0, 1));
  p.Add(Constraint::NeqConst(0, 5));
  EXPECT_EQ(p.ToString(), "$0<$1 AND $0!=5");
  Hypergraph h(3);
  h.AddEdge({0, 1});
  EXPECT_EQ(h.ToString(), "H(V=3; {0,1})");
}

TEST(RobustnessTest, SelfJoinHeavyQuery) {
  // The same relation appearing five times with overlapping variables.
  Database db = GraphDatabase(GnpRandom(10, 0.4, 8));
  auto q = ParseConjunctive(
               "ans(a) :- E(a, b), E(b, a), E(a, c), E(c, a), E(b, c).")
               .ValueOrDie();
  auto naive = NaiveEvaluateCq(db, q).ValueOrDie();
  // Cyclic query: engine should still produce the same result via naive.
  Engine engine(db);
  auto via_engine = engine.Run(q).ValueOrDie();
  EXPECT_TRUE(via_engine.EqualsAsSet(naive));
}

TEST(RobustnessTest, DuplicateAtomsAndComparisons) {
  Database db = GraphDatabase(PathGraph(4));
  auto q = ParseConjunctive(
               "ans(x, y) :- E(x, y), E(x, y), E(x, y), x != y, x != y.")
               .ValueOrDie();
  IneqOptions certified;
  certified.driver = IneqOptions::Driver::kCertified;
  auto fpt = IneqEvaluate(db, q, certified).ValueOrDie();
  auto naive = NaiveEvaluateCq(db, q).ValueOrDie();
  EXPECT_TRUE(fpt.EqualsAsSet(naive));
}

TEST(RobustnessTest, HeadConstantsAndRepeatedHeadVars) {
  Database db = GraphDatabase(PathGraph(4));
  auto q = ParseConjunctive("ans(x, x, 42) :- E(x, y).").ValueOrDie();
  auto out = NaiveEvaluateCq(db, q).ValueOrDie();
  for (size_t r = 0; r < out.size(); ++r) {
    EXPECT_EQ(out.At(r, 0), out.At(r, 1));
    EXPECT_EQ(out.At(r, 2), 42);
  }
  auto acyclic = AcyclicEvaluate(db, q).ValueOrDie();
  EXPECT_TRUE(acyclic.EqualsAsSet(out));
}

TEST(RobustnessTest, DatalogDeepRecursionTerminates) {
  // A long chain: TC needs many iterations but must terminate.
  Database db;
  RelId e = db.AddRelation("E", 2).ValueOrDie();
  for (Value v = 0; v < 200; ++v) db.relation(e).Add({v, v + 1});
  DatalogStats stats;
  auto out =
      EvaluateDatalog(db, TransitiveClosureProgram(), {}, &stats).ValueOrDie();
  EXPECT_EQ(out.size(), 200u * 201u / 2u);
  EXPECT_GT(stats.iterations, 2u);
}

TEST(RobustnessTest, FoWithConstantsInAtoms) {
  Database db = GraphDatabase(PathGraph(4));
  auto q = ParseFirstOrder("ans(x) := E(0, x) or E(x, 3).").ValueOrDie();
  auto out = EvaluateFirstOrder(db, q).ValueOrDie();
  EXPECT_TRUE(out.Contains(std::vector<Value>{1}));  // E(0,1)
  EXPECT_TRUE(out.Contains(std::vector<Value>{2}));  // E(2,3)
}

// ------------------------------------------------------------------------
// Hardened execution: deadlines, cancellation, memory budgets, fault sweep.
// ------------------------------------------------------------------------

// A join whose intermediates run to millions of rows: several hundred
// milliseconds of work, so millisecond-scale deadlines and mid-run
// cancellations reliably land while it executes.
Database HeavyJoinDb() { return GraphDatabase(CompleteGraph(50)); }
const char* kHeavyQuery = "ans(x, w) :- E(x, y), E(y, z), E(z, w).";
const char* kLightQuery = "ans(x, y) :- E(x, y).";

TEST(HardenedExecutionTest, DeadlineAbortsAndEngineStaysUsable) {
  Database db = HeavyJoinDb();
  auto heavy = ParseConjunctive(kHeavyQuery).ValueOrDie();
  auto light = ParseConjunctive(kLightQuery).ValueOrDie();
  for (size_t threads : {size_t{1}, size_t{4}}) {
    EngineOptions options;
    options.threads = threads;
    Engine engine(db, options);
    engine.options().limits.max_wall_ms = 1;
    auto start = std::chrono::steady_clock::now();
    auto aborted = engine.Run(heavy);
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    ASSERT_FALSE(aborted.ok()) << "threads=" << threads;
    EXPECT_EQ(aborted.status().code(), StatusCode::kDeadlineExceeded);
    EXPECT_NE(aborted.status().message().find("deadline"), std::string::npos);
    // The abort must land within roughly one scheduling quantum of the
    // deadline, not after the query completes (a clean run takes far
    // longer than this bound).
    EXPECT_LT(elapsed.count(), 1000) << "threads=" << threads;
    // Graceful degradation: the same engine answers the next query.
    engine.options().limits.max_wall_ms = 0;
    auto ok = engine.Run(light);
    ASSERT_TRUE(ok.ok()) << "threads=" << threads;
    EXPECT_EQ(ok.value().size(), db.relation(0).size());
  }
}

TEST(HardenedExecutionTest, DeadlineAbortsRerunSucceedsIdentically) {
  // Differential reuse-after-abort: abort the SAME query, then re-run it
  // unhardened on the same engine (plan cache and all) and on a fresh one —
  // answers must match exactly.
  Database db = GraphDatabase(CompleteGraph(16));
  auto q = ParseConjunctive(kHeavyQuery).ValueOrDie();
  for (size_t threads : {size_t{1}, size_t{4}}) {
    EngineOptions options;
    options.threads = threads;
    Engine engine(db, options);
    engine.options().limits.max_wall_ms = 1;
    // Tiny deadline: may or may not finish on this small instance; either
    // way the engine must stay consistent.
    (void)engine.Run(q);
    engine.options().limits.max_wall_ms = 0;
    auto after = engine.Run(q);
    ASSERT_TRUE(after.ok()) << "threads=" << threads;
    Engine fresh(db);
    auto expected = fresh.Run(q).ValueOrDie();
    EXPECT_TRUE(after.value().EqualsAsSet(expected)) << "threads=" << threads;
  }
}

TEST(HardenedExecutionTest, CancellationFromAnotherThread) {
  Database db = HeavyJoinDb();
  auto heavy = ParseConjunctive(kHeavyQuery).ValueOrDie();
  auto light = ParseConjunctive(kLightQuery).ValueOrDie();
  for (size_t threads : {size_t{1}, size_t{4}}) {
    QueryContext ctx;
    EngineOptions options;
    options.threads = threads;
    options.query_ctx = &ctx;
    Engine engine(db, options);
    std::thread canceller([&ctx] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      ctx.Cancel();
    });
    auto result = engine.Run(heavy);
    canceller.join();
    ASSERT_FALSE(result.ok()) << "threads=" << threads;
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
    // Cancellation is sticky until the owner resets the token.
    EXPECT_EQ(engine.Run(light).status().code(), StatusCode::kCancelled);
    ctx.Reset();
    auto ok = engine.Run(light);
    ASSERT_TRUE(ok.ok()) << "threads=" << threads;
    EXPECT_EQ(ok.value().size(), db.relation(0).size());
  }
}

TEST(HardenedExecutionTest, PreCancelledContextAbortsImmediately) {
  Database db = GraphDatabase(PathGraph(4));
  QueryContext ctx;
  ctx.Cancel();
  EngineOptions options;
  options.query_ctx = &ctx;
  Engine engine(db, options);
  auto q = ParseConjunctive(kLightQuery).ValueOrDie();
  EXPECT_EQ(engine.Run(q).status().code(), StatusCode::kCancelled);
}

TEST(HardenedExecutionTest, MemoryBudgetAbortsAndEngineStaysUsable) {
  Database db = HeavyJoinDb();
  auto heavy = ParseConjunctive(kHeavyQuery).ValueOrDie();
  auto light = ParseConjunctive(kLightQuery).ValueOrDie();
  for (size_t threads : {size_t{1}, size_t{4}}) {
    EngineOptions options;
    options.threads = threads;
    Engine engine(db, options);
    engine.options().limits.max_bytes = 1 << 20;  // 1 MiB << the join's need
    auto aborted = engine.Run(heavy);
    ASSERT_FALSE(aborted.ok()) << "threads=" << threads;
    EXPECT_EQ(aborted.status().code(), StatusCode::kResourceExhausted);
    EXPECT_NE(aborted.status().message().find("memory budget"),
              std::string::npos);
    engine.options().limits.max_bytes = 0;
    auto ok = engine.Run(light);
    ASSERT_TRUE(ok.ok()) << "threads=" << threads;
    EXPECT_EQ(ok.value().size(), db.relation(0).size());
  }
}

TEST(HardenedExecutionTest, DatalogMidFixpointDeadlineAbort) {
  // TC over a long chain: hundreds of semi-naive rounds. A tiny deadline
  // aborts mid-fixpoint; clearing it must then produce the exact closure —
  // no half-materialized IDB state or poisoned caches may survive.
  Database db;
  RelId e = db.AddRelation("E", 2).ValueOrDie();
  for (Value v = 0; v < 400; ++v) db.relation(e).Add({v, v + 1});
  auto program = TransitiveClosureProgram();
  for (size_t threads : {size_t{1}, size_t{4}}) {
    EngineOptions options;
    options.threads = threads;
    Engine engine(db, options);
    engine.options().limits.max_wall_ms = 1;
    auto aborted = engine.Run(program);
    if (!aborted.ok()) {
      EXPECT_EQ(aborted.status().code(), StatusCode::kDeadlineExceeded);
    }
    engine.options().limits.max_wall_ms = 0;
    auto full = engine.Run(program);
    ASSERT_TRUE(full.ok()) << "threads=" << threads;
    EXPECT_EQ(full.value().size(), 400u * 401u / 2u);
  }
}

TEST(HardenedExecutionTest, GenerousLimitsDoNotPerturbAnswers) {
  // Hardening armed but never tripped: answers and cache behavior must be
  // identical to the unhardened engine.
  Database db = GraphDatabase(GnpRandom(25, 0.3, 99));
  const char* pool[] = {
      "ans(x, z) :- E(x, y), E(y, z).",
      "ans(x) :- E(x, y), E(y, z), E(z, x).",
      "ans(x, y) :- E(x, y), x != y.",
  };
  EngineOptions hardened_options;
  hardened_options.limits.max_wall_ms = 60000;
  hardened_options.limits.max_bytes = 1ull << 32;
  Engine hardened(db, hardened_options);
  Engine baseline(db);
  for (const char* text : pool) {
    auto q = ParseConjunctive(text).ValueOrDie();
    auto a = hardened.Run(q).ValueOrDie();
    auto b = baseline.Run(q).ValueOrDie();
    EXPECT_TRUE(a.EqualsAsSet(b)) << text;
  }
}

TEST(MemoryAccountantTest, ChargePeakAndLatchedTrip) {
  MemoryAccountant acct(1000);
  acct.Charge(600);
  EXPECT_EQ(acct.used(), 600u);
  EXPECT_EQ(acct.peak(), 600u);
  EXPECT_FALSE(acct.tripped());
  acct.Charge(600);
  EXPECT_TRUE(acct.tripped());
  acct.Charge(-1200);
  EXPECT_EQ(acct.used(), 0u);
  EXPECT_EQ(acct.peak(), 1200u);
  EXPECT_TRUE(acct.tripped()) << "trip must latch across frees";
}

TEST(MemoryAccountantTest, ScopedInstallAndRestore) {
  EXPECT_EQ(MemoryAccountant::Current(), nullptr);
  auto acct = std::make_shared<MemoryAccountant>(0);
  {
    ScopedMemoryAccounting scope(acct);
    EXPECT_EQ(MemoryAccountant::Current(), acct);
    {
      ScopedMemoryAccounting inner(nullptr);
      EXPECT_EQ(MemoryAccountant::Current(), nullptr);
    }
    EXPECT_EQ(MemoryAccountant::Current(), acct);
  }
  EXPECT_EQ(MemoryAccountant::Current(), nullptr);
}

TEST(QueryContextTest, CheckPriorityAndReset) {
  QueryContext ctx;
  EXPECT_TRUE(ctx.Check().ok());
  ctx.ArmDeadline(0);  // disarmed
  EXPECT_FALSE(ctx.Aborted());
  ctx.ArmDeadline(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(ctx.Check().code(), StatusCode::kDeadlineExceeded);
  ctx.Cancel();  // cancellation outranks the expired deadline
  EXPECT_EQ(ctx.Check().code(), StatusCode::kCancelled);
  ctx.Reset();
  EXPECT_TRUE(ctx.Check().ok());
  ctx.ArmMemory(10);
  ctx.memory()->Charge(100);
  EXPECT_EQ(ctx.Check().code(), StatusCode::kResourceExhausted);
  ctx.ArmMemory(10);  // fresh accountant per arm
  EXPECT_TRUE(ctx.Check().ok());
}

TEST(FaultInjectionTest, ArmPointFailsCleanlyAndDisarms) {
  Database db;
  FaultInjector::ArmPoint("csv.load", 1);
  auto failed = LoadCsv(&db, "R", "1,2\n3,4\n");
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.status().message().find("injected fault at csv.load"),
            std::string::npos);
  EXPECT_TRUE(FaultInjector::fired());
  FaultInjector::Disarm();
  auto ok = LoadCsv(&db, "R", "1,2\n3,4\n");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(db.relation(ok.value()).size(), 2u);
}

TEST(FaultInjectionTest, RecordingListsProbesInArrivalOrder) {
  Database db = GraphDatabase(PathGraph(5));
  Engine engine(db);
  auto q = ParseConjunctive("ans(x, z) :- E(x, y), E(y, z).").ValueOrDie();
  FaultInjector::StartRecording();
  ASSERT_TRUE(engine.Run(q).ok());
  std::vector<std::string> points = FaultInjector::StopRecording();
  ASSERT_FALSE(points.empty());
  EXPECT_EQ(points.front(), "acyclic.plan");
  EXPECT_FALSE(FaultInjector::armed());
}

// The fault sweep: for each workload and thread count, record the probe
// trace once (warm caches), then arm every k-th probe hit in turn and
// assert (a) an armed fault that fires surfaces as a clean non-OK Status,
// and (b) after disarming, the SAME engine reproduces the baseline answer —
// no poisoned cache, scheduler, or database state survives any failure
// point. Runs on one engine throughout, exactly the production shape.
TEST(HardenedExecutionTest, FaultSweepAllWorkloads) {
  constexpr uint64_t kMaxArmPoints = 40;
  struct Workload {
    const char* label;
    const char* text;
  };
  const Workload workloads[] = {
      {"acyclic", "ans(x, z) :- E(x, y), E(y, z)."},
      {"cyclic", "ans(x) :- E(x, y), E(y, z), E(z, x)."},
      {"theorem2", "ans(x, y) :- E(x, y), x != y."},
      {"ucq", "ans(x) := exists y . (E(x, y) or E(y, x))."},
      {"counting", "COUNT(x) :- E(x, y), E(y, z)."},
      {"counting-scalar", "COUNT(*) :- E(x, y), E(y, z), E(z, x)."},
      {"counting-ucq", "COUNT(x) := exists y . (E(x, y) or E(y, x))."},
      {"datalog",
       "tc(x, y) :- E(x, y).\ntc(x, y) :- E(x, z), tc(z, y).\n"},
  };
  Database db = GraphDatabase(GnpRandom(12, 0.3, 47));
  for (size_t threads : {size_t{1}, size_t{4}}) {
    EngineOptions options;
    options.threads = threads;
    Engine engine(db, options);
    for (const Workload& w : workloads) {
      SCOPED_TRACE(std::string(w.label) + " threads=" +
                   std::to_string(threads));
      auto baseline = engine.RunText(w.text).ValueOrDie();  // warm caches
      FaultInjector::StartRecording();
      ASSERT_TRUE(engine.RunText(w.text).ok());
      const uint64_t probes = FaultInjector::StopRecording().size();
      ASSERT_GT(probes, 0u);
      for (uint64_t k = 1; k <= std::min(probes, kMaxArmPoints); ++k) {
        FaultInjector::ArmNth(k);
        auto result = engine.RunText(w.text);
        if (result.ok()) {
          // Legal only if the armed hit was never reached (thread-count or
          // cache-state divergence from the recording run).
          EXPECT_FALSE(FaultInjector::fired()) << "k=" << k;
        } else {
          EXPECT_FALSE(result.status().message().empty()) << "k=" << k;
        }
        FaultInjector::Disarm();
        auto recovered = engine.RunText(w.text);
        ASSERT_TRUE(recovered.ok()) << "k=" << k;
        EXPECT_TRUE(recovered.value().EqualsAsSet(baseline)) << "k=" << k;
      }
    }
  }
}

}  // namespace
}  // namespace paraquery

#include <gtest/gtest.h>

#include <set>

#include "common/combinatorics.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"

namespace paraquery {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad arity");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad arity");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad arity");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
}

Result<int> ReturnsValue() { return 42; }
Result<int> ReturnsError() { return Status::NotFound("nope"); }
Result<int> Chains() {
  PQ_ASSIGN_OR_RETURN(int v, ReturnsValue());
  return v + 1;
}
Result<int> ChainsError() {
  PQ_ASSIGN_OR_RETURN(int v, ReturnsError());
  return v + 1;
}

TEST(ResultTest, ValuePath) {
  auto r = ReturnsValue();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, ErrorPath) {
  auto r = ReturnsError();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Chains().value(), 43);
  EXPECT_EQ(ChainsError().status().code(), StatusCode::kNotFound);
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, BelowIsInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Below(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(RngTest, BelowCoversRange) {
  Rng rng(2);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 200; ++i) {
    int64_t v = rng.Range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(CombinatoricsTest, BinomialSmall) {
  EXPECT_EQ(Binomial(0, 0), 1u);
  EXPECT_EQ(Binomial(5, 0), 1u);
  EXPECT_EQ(Binomial(5, 5), 1u);
  EXPECT_EQ(Binomial(5, 2), 10u);
  EXPECT_EQ(Binomial(10, 3), 120u);
  EXPECT_EQ(Binomial(3, 5), 0u);
  EXPECT_EQ(Binomial(52, 5), 2598960u);
}

TEST(CombinatoricsTest, BinomialSaturates) {
  EXPECT_EQ(Binomial(1000, 500), UINT64_MAX);
}

TEST(CombinatoricsTest, BellNumbers) {
  EXPECT_EQ(Bell(0), 1u);
  EXPECT_EQ(Bell(1), 1u);
  EXPECT_EQ(Bell(2), 2u);
  EXPECT_EQ(Bell(3), 5u);
  EXPECT_EQ(Bell(4), 15u);
  EXPECT_EQ(Bell(5), 52u);
  EXPECT_EQ(Bell(10), 115975u);
}

TEST(CombinatoricsTest, KSubsetEnumerationCount) {
  int count = 0;
  ForEachKSubset(6, 3, [&](const std::vector<int>& s) {
    EXPECT_EQ(s.size(), 3u);
    EXPECT_TRUE(s[0] < s[1] && s[1] < s[2]);
    ++count;
    return true;
  });
  EXPECT_EQ(count, 20);
}

TEST(CombinatoricsTest, KSubsetEarlyStop) {
  int count = 0;
  bool completed = ForEachKSubset(6, 3, [&](const std::vector<int>&) {
    return ++count < 5;
  });
  EXPECT_FALSE(completed);
  EXPECT_EQ(count, 5);
}

TEST(CombinatoricsTest, KSubsetEdgeCases) {
  int count = 0;
  ForEachKSubset(4, 0, [&](const std::vector<int>& s) {
    EXPECT_TRUE(s.empty());
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1);
  count = 0;
  ForEachKSubset(3, 4, [&](const std::vector<int>&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 0);
}

TEST(CombinatoricsTest, SetPartitionCountsMatchBell) {
  for (int n = 0; n <= 7; ++n) {
    uint64_t count = 0;
    ForEachSetPartition(n, [&](const std::vector<int>&) {
      ++count;
      return true;
    });
    EXPECT_EQ(count, Bell(n)) << "n=" << n;
  }
}

TEST(CombinatoricsTest, SetPartitionsAreRestrictedGrowth) {
  ForEachSetPartition(5, [&](const std::vector<int>& blocks) {
    int max_seen = -1;
    for (int b : blocks) {
      EXPECT_LE(b, max_seen + 1);
      max_seen = std::max(max_seen, b);
    }
    return true;
  });
}

TEST(CombinatoricsTest, StirlingPartialSum) {
  // Partitions of 4 elements into at most 2 blocks: S(4,1)+S(4,2) = 1+7 = 8.
  EXPECT_EQ(StirlingPartialSum(4, 2), 8u);
  // At most n blocks = Bell(n).
  EXPECT_EQ(StirlingPartialSum(6, 6), Bell(6));
}

}  // namespace
}  // namespace paraquery

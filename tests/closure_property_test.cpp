// Property tests for the comparison closure (Section 5 / Klug): on random
// systems of order constraints over a small domain, the closure's
// consistency verdict must match brute-force satisfiability, and the
// collapsed query must preserve the answer set.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "eval/naive.hpp"
#include "query/builder.hpp"
#include "query/comparison_closure.hpp"
#include "workload/generators.hpp"

namespace paraquery {
namespace {

// Brute force: does an assignment of variables to values in [lo, hi)
// satisfying all comparison atoms exist? The closure reasons over an
// unbounded dense order, so the test keeps constants spaced 10 apart and
// the brute-force range extending well past them on both sides — then
// integer assignments witness exactly the dense-order-satisfiable systems.
bool BruteForceSatisfiable(int num_vars, Value lo, Value hi,
                           const std::vector<CompareAtom>& atoms) {
  std::vector<Value> assign(num_vars, lo);
  auto value_of = [&assign](const Term& t) {
    return t.is_var() ? assign[t.var()] : t.value();
  };
  for (;;) {
    bool ok = true;
    for (const CompareAtom& c : atoms) {
      if (!CompareAtom::Apply(c.op, value_of(c.lhs), value_of(c.rhs))) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
    int pos = num_vars - 1;
    while (pos >= 0 && ++assign[pos] == hi) assign[pos--] = lo;
    if (pos < 0) return false;
  }
}

class ClosurePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ClosurePropertyTest, ConsistencyMatchesBruteForce) {
  Rng rng(GetParam());
  const int num_vars = 4;
  // Random constraint system over 4 variables and constants in [0, 3).
  CqBuilder builder;
  Term vs[num_vars] = {builder.Var("a"), builder.Var("b"), builder.Var("c"),
                       builder.Var("d")};
  builder.Head({});
  // One relational atom covering all variables keeps the query safe.
  builder.Atom("R", {vs[0], vs[1], vs[2], vs[3]});
  std::vector<CompareAtom> atoms;
  int count = 2 + static_cast<int>(rng.Below(6));
  for (int i = 0; i < count; ++i) {
    CompareOp op = static_cast<CompareOp>(rng.Below(4));  // Neq/Lt/Le/Eq
    // Constants spaced 10 apart (0/10/20) so dense-order gaps between them
    // contain integers.
    Term lhs = rng.Chance(0.8) ? vs[rng.Below(num_vars)]
                               : Term::Const(10 * rng.Range(0, 2));
    Term rhs = rng.Chance(0.8) ? vs[rng.Below(num_vars)]
                               : Term::Const(10 * rng.Range(0, 2));
    builder.Compare(op, lhs, rhs);
    atoms.push_back({op, lhs, rhs});
  }
  ConjunctiveQuery q = builder.Build().ValueOrDie();

  auto closure = CollapseComparisons(q).ValueOrDie();
  bool satisfiable = BruteForceSatisfiable(num_vars, -6, 27, atoms);
  EXPECT_EQ(closure.consistent, satisfiable) << q.ToString();

  if (closure.consistent) {
    // Answer preservation on a universal relation: Q and the collapsed Q'
    // have the same (Boolean) answer when R holds every 4-tuple over a
    // small value set.
    Database db;
    RelId r = db.AddRelation("R", 4).ValueOrDie();
    for (Value w = 0; w < 5; ++w) {
      for (Value x = 0; x < 5; ++x) {
        for (Value y = 0; y < 5; ++y) {
          for (Value z = 0; z < 5; ++z) db.relation(r).Add({w, x, y, z});
        }
      }
    }
    auto original = NaiveCqNonempty(db, q).ValueOrDie();
    auto collapsed = NaiveCqNonempty(db, closure.rewritten).ValueOrDie();
    EXPECT_EQ(original, collapsed) << q.ToString() << "\n-> "
                                   << closure.rewritten.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosurePropertyTest,
                         ::testing::Range<uint64_t>(1, 41));

TEST(BuilderTest, CqBuilderProducesPaperQuery) {
  CqBuilder b;
  Term e = b.Var("e"), p = b.Var("p"), q = b.Var("q");
  auto query =
      b.Head({e}).Atom("EP", {e, p}).Atom("EP", {e, q}).Neq(p, q).Build()
          .ValueOrDie();
  EXPECT_EQ(query.ToString(), MultiProjectQuery().ToString());
}

TEST(BuilderTest, CqBuilderRejectsUnsafe) {
  CqBuilder b;
  Term x = b.Var("x"), y = b.Var("y");
  auto bad = b.Head({x, y}).Atom("R", {x}).Build();
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(BuilderTest, DatalogBuilderTransitiveClosure) {
  DatalogBuilder b;
  {
    auto& rule = b.Rule();
    Term x = rule.Var("x"), y = rule.Var("y");
    rule.Head("tc", {x, y}).Atom("E", {x, y});
  }
  {
    auto& rule = b.Rule();
    Term x = rule.Var("x"), y = rule.Var("y"), z = rule.Var("z");
    rule.Head("tc", {x, y}).Atom("E", {x, z}).Atom("tc", {z, y});
  }
  auto program = b.Build().ValueOrDie();
  EXPECT_EQ(program.goal, "tc");
  EXPECT_EQ(program.rules.size(), 2u);
  EXPECT_EQ(program.ToString(), TransitiveClosureProgram().ToString());
}

TEST(BuilderTest, DatalogBuilderExplicitGoalAndValidation) {
  DatalogBuilder b;
  {
    auto& rule = b.Rule();
    Term x = rule.Var("x");
    rule.Head("a", {x}).Atom("E", {x, x});
  }
  b.Goal("ghost");
  EXPECT_FALSE(b.Build().ok());
}

}  // namespace
}  // namespace paraquery

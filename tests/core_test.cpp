// Tests for the classifier, the engine facade, and the workload generators.
#include <gtest/gtest.h>

#include "core/classifier.hpp"
#include "core/engine.hpp"
#include "core/explain.hpp"
#include "eval/naive.hpp"
#include "graph/generators.hpp"
#include "query/parser.hpp"
#include "workload/generators.hpp"

namespace paraquery {
namespace {

TEST(ClassifierTest, AcyclicPureCqIsTractable) {
  auto q = ParseConjunctive("ans(x, z) :- E(x, y), E(y, z).").ValueOrDie();
  Classification c = ClassifyConjunctive(q);
  EXPECT_TRUE(c.fixed_parameter_tractable);
  EXPECT_EQ(c.engine, EngineChoice::kAcyclic);
  EXPECT_TRUE(c.acyclic);
}

TEST(ClassifierTest, AcyclicNeqIsTheorem2) {
  auto q = ParseConjunctive("g(e) :- EP(e, p), EP(e, q), p != q.")
               .ValueOrDie();
  Classification c = ClassifyConjunctive(q);
  EXPECT_TRUE(c.fixed_parameter_tractable);
  EXPECT_EQ(c.engine, EngineChoice::kInequality);
  EXPECT_NE(c.basis.find("Theorem 2"), std::string::npos);
}

TEST(ClassifierTest, OrderComparisonsAreTheorem3) {
  auto q = ParseConjunctive("g(e) :- EM(e, m), ES(e, s), ES(m, t), t < s.")
               .ValueOrDie();
  Classification c = ClassifyConjunctive(q);
  EXPECT_FALSE(c.fixed_parameter_tractable);
  EXPECT_EQ(c.class_under_q, "W[1]-complete");
  EXPECT_NE(c.basis.find("Theorem 3"), std::string::npos);
}

TEST(ClassifierTest, CyclicCqIsW1) {
  auto q = ParseConjunctive("p() :- E(x,y), E(y,z), E(z,x).").ValueOrDie();
  Classification c = ClassifyConjunctive(q);
  EXPECT_FALSE(c.fixed_parameter_tractable);
  EXPECT_FALSE(c.acyclic);
  EXPECT_EQ(c.class_under_q, "W[1]-complete");
}

TEST(ClassifierTest, PositivePrenexIsWSatComplete) {
  auto q = ParsePositive("p() := exists x, y . (A(x) and (B(y) or A(y))).")
               .ValueOrDie();
  Classification c = ClassifyPositive(q);
  EXPECT_TRUE(c.prenex);
  EXPECT_NE(c.class_under_v.find("W[SAT]-complete"), std::string::npos);
  auto q2 = ParsePositive("p() := (exists x . A(x)) and (exists y . B(y)).")
                .ValueOrDie();
  Classification c2 = ClassifyPositive(q2);
  EXPECT_FALSE(c2.prenex);
  EXPECT_EQ(c2.class_under_v, "W[SAT]-hard");
}

TEST(ClassifierTest, FirstOrderIsWtHard) {
  auto q = ParseFirstOrder("p() := not (exists x . E(x, x)).").ValueOrDie();
  Classification c = ClassifyFirstOrder(q);
  EXPECT_NE(c.class_under_q.find("W[t]-hard"), std::string::npos);
  EXPECT_NE(c.class_under_v.find("W[P]-hard"), std::string::npos);
}

TEST(ClassifierTest, PositiveFoClassifiedAsPositive) {
  auto q = ParseFirstOrder("p() := exists x . A(x).").ValueOrDie();
  Classification c = ClassifyFirstOrder(q);
  EXPECT_EQ(c.language, QueryLanguage::kPositive);
}

TEST(ClassifierTest, DatalogArity) {
  auto tc = TransitiveClosureProgram();
  Classification c = ClassifyDatalog(tc);
  EXPECT_NE(c.class_under_q.find("W[1]-complete"), std::string::npos);
  auto wide = ArityRWalkProgram(4);
  Classification cw = ClassifyDatalog(wide);
  EXPECT_NE(cw.class_under_q.find("Vardi"), std::string::npos)
      << cw.class_under_q;
  EXPECT_EQ(cw.max_idb_arity, 4);
}

TEST(EngineTest, RoutesAcyclicNeqToTheorem2) {
  Database db = EmployeeProjects(50, 20, 1, 3, 42);
  Engine engine(db);
  auto q = MultiProjectQuery();
  auto fast = engine.Run(q).ValueOrDie();
  auto naive = NaiveEvaluateCq(db, q).ValueOrDie();
  EXPECT_TRUE(fast.EqualsAsSet(naive));
}

TEST(EngineTest, ComparisonClosureAppliedBeforeRouting) {
  Database db = GraphDatabase(PathGraph(5));
  // x <= y and y <= x collapse to equality: E(x, x) pattern.
  Engine engine(db);
  auto q = ParseConjunctive("ans(x, y) :- E(x, y), x <= y, y <= x.")
               .ValueOrDie();
  auto out = engine.Run(q).ValueOrDie();
  EXPECT_TRUE(out.empty());  // the path graph has no self-loops
  auto q2 = ParseConjunctive("ans(x, y) :- E(x, y), x < y, y < x.")
                .ValueOrDie();
  EXPECT_TRUE(engine.Run(q2).ValueOrDie().empty());  // inconsistent
}

TEST(EngineTest, OrderComparisonsFallBackToNaive) {
  Database db = EmployeeSalaries(40, 1000, 7);
  Engine engine(db);
  auto q = HigherPaidThanManagerQuery();
  auto out = engine.Run(q).ValueOrDie();
  auto naive = NaiveEvaluateCq(db, q).ValueOrDie();
  EXPECT_TRUE(out.EqualsAsSet(naive));
}

TEST(EngineTest, RunTextDispatch) {
  Database db = GraphDatabase(CycleGraph(4));
  Engine engine(db);
  // Rule syntax.
  auto rule = engine.RunText("ans(x, z) :- E(x, y), E(y, z).");
  ASSERT_TRUE(rule.ok());
  // Formula syntax.
  auto fo = engine.RunText("ans(x) := exists y . E(x, y).");
  ASSERT_TRUE(fo.ok());
  EXPECT_EQ(fo.value().size(), 4u);
  // Datalog program.
  auto dl = engine.RunText(
      "tc(x, y) :- E(x, y).\n"
      "tc(x, y) :- E(x, z), tc(z, y).\n");
  ASSERT_TRUE(dl.ok());
  EXPECT_EQ(dl.value().size(), 16u);  // cycle: everything reaches everything
}

TEST(EngineTest, LastStatsExposeEvaluatorCounters) {
  Database db;
  RelId e = db.AddRelation("E", 2).ValueOrDie();
  db.relation(e).Add({1, 2});
  db.relation(e).Add({2, 3});
  Engine engine(db);
  // Datalog run: the E atom appears in both rules but is materialized once
  // by the program-wide EDB cache.
  auto dl = engine.RunText(
      "tc(x, y) :- E(x, y).\n"
      "tc(x, y) :- E(x, z), tc(z, y).\n");
  ASSERT_TRUE(dl.ok());
  EXPECT_GE(engine.last_stats().datalog.rule_firings, 2u);
  EXPECT_EQ(engine.last_stats().datalog.edb_materializations, 1u);
  EXPECT_EQ(engine.last_stats().datalog.edb_cache_hits, 1u);
  // Acyclic run: the constant-free atom comes back as a zero-copy view.
  auto cq = engine.RunText("ans(x) :- E(x, y).");
  ASSERT_TRUE(cq.ok());
  EXPECT_EQ(engine.last_stats().acyclic.shared_atom_storage, 1u);
}

TEST(EngineTest, RunTextWithStringConstants) {
  Database db;
  RelId likes = db.AddRelation("Likes", 2).ValueOrDie();
  Value alice = db.dict().Intern("alice");
  Value bob = db.dict().Intern("bob");
  db.relation(likes).Add({alice, bob});
  Engine engine(db);
  // Without a dictionary, string constants are a parse error.
  EXPECT_FALSE(engine.RunText("ans(x) :- Likes(x, 'bob').").ok());
  auto out = engine.RunText("ans(x) :- Likes(x, 'bob').", &db.dict());
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().size(), 1u);
  EXPECT_EQ(out.value().At(0, 0), alice);
}

TEST(EngineTest, ConstantOnlyQuery) {
  Database db = GraphDatabase(PathGraph(2));
  Engine engine(db);
  auto q = ParseConjunctive("ans(1, 2) :- .").ValueOrDie();
  auto out = engine.Run(q).ValueOrDie();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.At(0, 0), 1);
  EXPECT_EQ(out.At(0, 1), 2);
}

TEST(EngineTest, ExplainTextMentionsTheorem) {
  Database db = GraphDatabase(PathGraph(3));
  Engine engine(db);
  auto report =
      engine.ExplainText("g(e) :- EP(e, p), EP(e, q), p != q.").ValueOrDie();
  EXPECT_NE(report.find("Theorem 2"), std::string::npos);
  EXPECT_NE(report.find("color coding"), std::string::npos);
  auto fo = engine.ExplainText("p() := not (exists x . E(x, x)).")
                .ValueOrDie();
  EXPECT_NE(fo.find("W[P]-hard"), std::string::npos);
}

TEST(EngineTest, ExplainInconsistentComparisons) {
  Database db = GraphDatabase(PathGraph(3));
  Engine engine(db);
  auto report =
      engine.ExplainText("p() :- E(x, y), x < y, y < x.").ValueOrDie();
  EXPECT_NE(report.find("INCONSISTENT"), std::string::npos);
}

TEST(WorkloadTest, EmployeeProjectsShape) {
  Database db = EmployeeProjects(100, 30, 1, 4, 3);
  RelId ep = db.FindRelation("EP").ValueOrDie();
  EXPECT_GE(db.relation(ep).size(), 100u);
  EXPECT_LE(db.relation(ep).size(), 400u);
  // Ground truth: employees with >= 2 distinct projects.
  auto q = MultiProjectQuery();
  auto ans = NaiveEvaluateCq(db, q).ValueOrDie();
  std::map<Value, std::set<Value>> projects;
  for (size_t r = 0; r < db.relation(ep).size(); ++r) {
    projects[db.relation(ep).At(r, 0)].insert(db.relation(ep).At(r, 1));
  }
  size_t expected = 0;
  for (const auto& [e, ps] : projects) {
    if (ps.size() >= 2) ++expected;
  }
  EXPECT_EQ(ans.size(), expected);
}

TEST(WorkloadTest, StudentCoursesOutsideFraction) {
  Database db = StudentCourses(200, 40, 4, 3, 0.3, 9);
  auto q = OutsideDepartmentQuery();
  auto ans = NaiveEvaluateCq(db, q).ValueOrDie();
  // Roughly 30% of 200 students; generator forces exactness per student.
  EXPECT_GT(ans.size(), 30u);
  EXPECT_LT(ans.size(), 90u);
}

TEST(WorkloadTest, SimplePathQueryShape) {
  auto q = SimplePathQuery(3);
  EXPECT_EQ(q.body.size(), 3u);
  EXPECT_EQ(q.comparisons.size(), 6u);  // C(4,2)
  EXPECT_TRUE(q.IsAcyclic());
  EXPECT_TRUE(q.HasOnlyInequalities());
}

TEST(WorkloadTest, ArityRWalkProgramValidates) {
  for (int r = 2; r <= 5; ++r) {
    auto prog = ArityRWalkProgram(r);
    EXPECT_TRUE(prog.Validate().ok());
    EXPECT_EQ(prog.MaxIdbArity(), r);
  }
}

TEST(WorkloadTest, RandomAcyclicNeqQueryIsAcyclic) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    auto q = RandomAcyclicNeqQuery(3, 5, 3, seed);
    EXPECT_TRUE(q.IsAcyclic());
    EXPECT_TRUE(q.Validate().ok());
  }
}

}  // namespace
}  // namespace paraquery

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "relational/ops.hpp"

namespace paraquery {
namespace {

NamedRelation Make(std::vector<AttrId> attrs,
                   std::vector<std::vector<Value>> rows) {
  NamedRelation r(std::move(attrs));
  for (const auto& row : rows) r.rel().Add(row);
  return r;
}

TEST(OpsTest, SelectFiltersRows) {
  auto r = Make({0, 1}, {{1, 2}, {2, 2}, {3, 4}});
  Predicate p;
  p.Add(Constraint::EqCols(0, 1));
  auto out = Select(r, p);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.rel().At(0, 0), 2);
}

TEST(OpsTest, ProjectReordersAndDedups) {
  auto r = Make({0, 1}, {{1, 9}, {2, 9}, {1, 8}});
  auto out = Project(r, {1});
  EXPECT_EQ(out.attrs(), (std::vector<AttrId>{1}));
  EXPECT_EQ(out.size(), 2u);  // {8, 9}
  auto swapped = Project(r, {1, 0}, /*dedup=*/false);
  EXPECT_EQ(swapped.size(), 3u);
  EXPECT_EQ(swapped.rel().At(0, 0), 9);
  EXPECT_EQ(swapped.rel().At(0, 1), 1);
}

TEST(OpsTest, NaturalJoinOnSharedAttr) {
  auto r = Make({0, 1}, {{1, 2}, {2, 3}});
  auto s = Make({1, 2}, {{2, 10}, {2, 11}, {9, 12}});
  auto out = NaturalJoin(r, s).ValueOrDie();
  EXPECT_EQ(out.attrs(), (std::vector<AttrId>{0, 1, 2}));
  EXPECT_EQ(out.size(), 2u);  // (1,2,10), (1,2,11)
  EXPECT_TRUE(out.rel().Contains(std::vector<Value>{1, 2, 10}));
  EXPECT_TRUE(out.rel().Contains(std::vector<Value>{1, 2, 11}));
}

TEST(OpsTest, NaturalJoinDisjointIsCrossProduct) {
  auto r = Make({0}, {{1}, {2}});
  auto s = Make({1}, {{7}, {8}});
  auto out = NaturalJoin(r, s).ValueOrDie();
  EXPECT_EQ(out.size(), 4u);
}

TEST(OpsTest, NaturalJoinPostFilter) {
  auto r = Make({0}, {{1}, {2}});
  auto s = Make({1}, {{1}, {2}});
  JoinOptions opt;
  opt.post_filter.Add(Constraint::NeqCols(0, 1));
  auto out = NaturalJoin(r, s, opt).ValueOrDie();
  EXPECT_EQ(out.size(), 2u);  // (1,2) and (2,1)
  EXPECT_FALSE(out.rel().Contains(std::vector<Value>{1, 1}));
}

TEST(OpsTest, NaturalJoinRowLimit) {
  auto r = Make({0}, {{1}, {2}, {3}});
  auto s = Make({1}, {{1}, {2}, {3}});
  JoinOptions opt;
  opt.max_output_rows = 4;
  auto out = NaturalJoin(r, s, opt);
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
}

TEST(OpsTest, JoinWithBooleanTrue) {
  auto r = Make({0}, {{1}, {2}});
  auto out = NaturalJoin(r, BooleanTrue()).ValueOrDie();
  EXPECT_EQ(out.size(), 2u);
  auto out2 = NaturalJoin(r, BooleanFalse()).ValueOrDie();
  EXPECT_TRUE(out2.empty());
}

TEST(OpsTest, SemijoinKeepsMatchingRows) {
  auto r = Make({0, 1}, {{1, 2}, {2, 3}, {4, 5}});
  auto s = Make({1}, {{2}, {5}});
  auto out = Semijoin(r, s);
  EXPECT_EQ(out.attrs(), r.attrs());
  EXPECT_EQ(out.size(), 2u);
  EXPECT_TRUE(out.rel().Contains(std::vector<Value>{1, 2}));
  EXPECT_TRUE(out.rel().Contains(std::vector<Value>{4, 5}));
}

TEST(OpsTest, SemijoinNoCommonAttrs) {
  auto r = Make({0}, {{1}});
  auto s_nonempty = Make({1}, {{9}});
  auto s_empty = Make({1}, {});
  EXPECT_EQ(Semijoin(r, s_nonempty).size(), 1u);
  EXPECT_TRUE(Semijoin(r, s_empty).empty());
}

TEST(OpsTest, UnionDifferenceIntersect) {
  auto a = Make({0}, {{1}, {2}});
  auto b = Make({0}, {{2}, {3}});
  EXPECT_EQ(UnionSet(a, b).size(), 3u);
  auto diff = Difference(a, b);
  EXPECT_EQ(diff.size(), 1u);
  EXPECT_TRUE(diff.rel().Contains(std::vector<Value>{1}));
  auto inter = Intersect(a, b);
  EXPECT_EQ(inter.size(), 1u);
  EXPECT_TRUE(inter.rel().Contains(std::vector<Value>{2}));
}

TEST(OpsTest, SetOpsAlignColumnOrder) {
  auto a = Make({0, 1}, {{1, 2}});
  auto b = Make({1, 0}, {{2, 1}});  // same tuple, columns swapped
  EXPECT_EQ(UnionSet(a, b).size(), 1u);
  EXPECT_TRUE(Difference(a, b).empty());
}

TEST(OpsTest, ZeroArySetOps) {
  EXPECT_FALSE(UnionSet(BooleanFalse(), BooleanTrue()).empty());
  EXPECT_TRUE(UnionSet(BooleanFalse(), BooleanFalse()).empty());
  EXPECT_FALSE(UnionSet(BooleanTrue(), BooleanTrue()).empty());
  EXPECT_TRUE(Difference(BooleanTrue(), BooleanTrue()).empty());
  EXPECT_FALSE(Difference(BooleanTrue(), BooleanFalse()).empty());
  EXPECT_TRUE(Difference(BooleanFalse(), BooleanTrue()).empty());
  EXPECT_TRUE(Difference(BooleanFalse(), BooleanFalse()).empty());
  EXPECT_FALSE(Intersect(BooleanTrue(), BooleanTrue()).empty());
  EXPECT_TRUE(Intersect(BooleanTrue(), BooleanFalse()).empty());
  EXPECT_TRUE(Intersect(BooleanFalse(), BooleanTrue()).empty());
  // Zero-ary results stay Boolean: at most one (empty) row.
  EXPECT_EQ(UnionSet(BooleanTrue(), BooleanTrue()).size(), 1u);
}

TEST(OpsTest, ProjectToEmptyAttrsIsBoolean) {
  // π_∅(R) is the Boolean "R nonempty?" — TRUE for a nonempty input, FALSE
  // for an empty one.
  auto r = Make({0, 1}, {{1, 2}, {3, 4}});
  auto some = Project(r, {});
  EXPECT_EQ(some.arity(), 0u);
  EXPECT_EQ(some.size(), 1u);
  auto none = Project(Make({0, 1}, {}), {});
  EXPECT_EQ(none.arity(), 0u);
  EXPECT_TRUE(none.empty());
}

TEST(OpsTest, IdentitySelectAndProjectAreZeroCopyViews) {
  auto r = Make({0, 1}, {{1, 2}, {3, 4}});
  // Empty predicate: every row passes, so Select returns a view.
  auto selected = Select(r, Predicate{});
  EXPECT_EQ(selected.size(), 2u);
  EXPECT_TRUE(selected.rel().SharesStorageWith(r.rel()));
  // No-op projection: same attributes in the same order.
  auto projected = Project(r, {0, 1});
  EXPECT_EQ(projected.size(), 2u);
  EXPECT_TRUE(projected.rel().SharesStorageWith(r.rel()));
  // A reorder is a genuine copy.
  auto swapped = Project(r, {1, 0});
  EXPECT_FALSE(swapped.rel().SharesStorageWith(r.rel()));
}

TEST(OpsTest, SemijoinAllSurvivorsSharesStorage) {
  auto left = Make({0, 1}, {{1, 2}, {3, 4}});
  auto right_all = Make({1}, {{2}, {4}});
  auto kept = Semijoin(left, right_all);
  EXPECT_EQ(kept.size(), 2u);
  EXPECT_TRUE(kept.rel().SharesStorageWith(left.rel()));
  auto right_some = Make({1}, {{2}});
  auto filtered = Semijoin(left, right_some);
  EXPECT_EQ(filtered.size(), 1u);
  EXPECT_FALSE(filtered.rel().SharesStorageWith(left.rel()));
  EXPECT_EQ(filtered.rel().At(0, 0), 1);
}

TEST(OpsTest, CrossProduct) {
  auto a = Make({0}, {{1}, {2}});
  auto b = Make({5}, {{7}});
  auto out = CrossProduct(a, b).ValueOrDie();
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(out.attrs(), (std::vector<AttrId>{0, 5}));
}

TEST(OpsTest, DomainPowerEnumeratesAllTuples) {
  auto out = DomainPower({0, 1}, {1, 2, 3}, 100).ValueOrDie();
  EXPECT_EQ(out.size(), 9u);
  EXPECT_TRUE(out.rel().Contains(std::vector<Value>{3, 1}));
}

TEST(OpsTest, DomainPowerRespectsLimit) {
  auto out = DomainPower({0, 1, 2}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 100);
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
}

TEST(OpsTest, DomainPowerZeroAttrs) {
  auto out = DomainPower({}, {1, 2}, 10).ValueOrDie();
  EXPECT_EQ(out.size(), 1u);  // one empty tuple
}

TEST(OpsTest, ComplementOverDomain) {
  auto r = Make({0}, {{1}, {3}});
  auto out = Complement(r, {1, 2, 3}, 100).ValueOrDie();
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.rel().Contains(std::vector<Value>{2}));
}

// Property sweep: join algebra invariants on random relations.
class JoinPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinPropertyTest, JoinCommutesAndSemijoinBounds) {
  Rng rng(GetParam());
  auto random_rel = [&rng](std::vector<AttrId> attrs, int rows, int dom) {
    NamedRelation r(std::move(attrs));
    for (int i = 0; i < rows; ++i) {
      ValueVec row(r.attrs().size());
      for (auto& v : row) v = rng.Range(0, dom - 1);
      r.rel().Add(row);
    }
    r.rel().SortAndDedup();
    return r;
  };
  auto a = random_rel({0, 1}, 20, 5);
  auto b = random_rel({1, 2}, 20, 5);

  auto ab = NaturalJoin(a, b).ValueOrDie();
  auto ba = NaturalJoin(b, a).ValueOrDie();
  EXPECT_TRUE(ab.EquivalentTo(ba));

  // Semijoin = projection of join onto left attrs.
  auto semi = Semijoin(a, b);
  auto proj = Project(ab, a.attrs());
  semi.rel().SortAndDedup();
  EXPECT_TRUE(semi.EquivalentTo(proj));

  // Join with self is identity (on deduped input).
  auto self = NaturalJoin(a, a).ValueOrDie();
  self.rel().SortAndDedup();
  EXPECT_TRUE(self.EquivalentTo(a));

  // Union/difference partition: (a−b) ∪ (a∩b) = a over same schema.
  auto c = random_rel({0, 1}, 15, 4);
  auto left = Difference(a, c);
  auto mid = Intersect(a, c);
  EXPECT_TRUE(UnionSet(left, mid).EquivalentTo(a));
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace paraquery

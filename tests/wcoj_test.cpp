// Worst-case-optimal multiway joins: the leapfrog kernel, the sorted-trie
// cache, generalized hypertree decompositions, the planner's WCOJ route
// (differential against the binary plans and the backtracking oracle, at
// several thread counts), fault injection in the multiway operator, and the
// hardened active-domain (FO) evaluator.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/fault_injection.hpp"
#include "core/engine.hpp"
#include "eval/naive.hpp"
#include "graph/generators.hpp"
#include "hypergraph/hypertree.hpp"
#include "query/parser.hpp"
#include "relational/leapfrog.hpp"
#include "relational/trie_index.hpp"
#include "workload/generators.hpp"

namespace paraquery {
namespace {

// ---------------------------------------------------------------------------
// Leapfrog kernel.
// ---------------------------------------------------------------------------

TEST(LeapfrogTest, DirectedTriangleCycle) {
  // Regression for the sibling-range bug: input E(y,z) participates only at
  // levels 1-2, so a level-1 frame that exits without restoring its ranges
  // starves the NEXT x-group's intersection. All three rotations of the
  // 3-cycle must surface.
  Relation e(2);
  e.Add({1, 2});
  e.Add({2, 3});
  e.Add({3, 1});
  std::vector<LeapfrogInput> ins(3);
  ins[0].trie = TrieIndex::Build(e, {0, 1});  // E(x, y)
  ins[0].attr_of_level = {0, 1};
  ins[1].trie = TrieIndex::Build(e, {0, 1});  // E(y, z)
  ins[1].attr_of_level = {1, 2};
  ins[2].trie = TrieIndex::Build(e, {1, 0});  // E(z, x) keyed (x, z)
  ins[2].attr_of_level = {0, 2};
  RuntimeOptions rt;
  Relation out = LeapfrogJoin(ins, 3, rt).ValueOrDie();
  ASSERT_EQ(out.size(), 3u);
  Relation expected(3);
  expected.Add({1, 2, 3});
  expected.Add({2, 3, 1});
  expected.Add({3, 1, 2});
  EXPECT_TRUE(out.EqualsAsSet(expected));
}

TEST(LeapfrogTest, OutputRowLimitSurfacesResourceExhausted) {
  Relation e(2);
  for (Value i = 0; i < 20; ++i) {
    for (Value j = 0; j < 20; ++j) {
      if (i != j) e.Add({i, j});
    }
  }
  std::vector<LeapfrogInput> ins(3);
  ins[0].trie = TrieIndex::Build(e, {0, 1});
  ins[0].attr_of_level = {0, 1};
  ins[1].trie = TrieIndex::Build(e, {0, 1});
  ins[1].attr_of_level = {1, 2};
  ins[2].trie = TrieIndex::Build(e, {1, 0});
  ins[2].attr_of_level = {0, 2};
  RuntimeOptions rt;
  auto limited = LeapfrogJoin(ins, 3, rt, /*max_output_rows=*/10);
  ASSERT_FALSE(limited.ok());
  EXPECT_EQ(limited.status().code(), StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// Sorted-trie cache on the shared RowBlock.
// ---------------------------------------------------------------------------

TEST(TrieViewTest, CachedPerColumnOrderAndInvalidatedByMutation) {
  Relation r(2);
  r.Add({3, 1});
  r.Add({1, 2});
  r.Add({3, 1});  // duplicate: the trie dedups
  auto t01 = r.TrieView({0, 1});
  EXPECT_EQ(t01->rows(), 2u);
  EXPECT_EQ(r.TrieView({0, 1}).get(), t01.get());  // cache hit
  auto t10 = r.TrieView({1, 0});
  EXPECT_NE(t10.get(), t01.get());  // keyed by column order
  EXPECT_EQ(t10->At(0, 0), 1);      // sorted by column 1 first
  r.Add({0, 0});                    // in-place mutation invalidates
  auto rebuilt = r.TrieView({0, 1});
  EXPECT_NE(rebuilt.get(), t01.get());
  EXPECT_EQ(rebuilt->rows(), 3u);
}

TEST(TrieViewTest, CopyOnWriteClonesDoNotShareInvalidation) {
  Relation r(1);
  r.Add({5});
  auto original = r.TrieView({0});
  Relation copy = r;  // shares storage: same cache
  EXPECT_EQ(copy.TrieView({0}).get(), original.get());
  copy.Add({7});  // copy-on-write: the clone starts with an empty cache
  EXPECT_EQ(copy.TrieView({0})->rows(), 2u);
  // The original's cache survives untouched.
  EXPECT_EQ(r.TrieView({0}).get(), original.get());
  EXPECT_EQ(original->rows(), 1u);
}

TEST(TrieViewTest, BuildChargesTheThreadCurrentAccountant) {
  auto accountant = std::make_shared<MemoryAccountant>();
  {
    ScopedMemoryAccounting scope(accountant);
    Relation r(2);
    for (Value i = 0; i < 64; ++i) r.Add({i, i + 1});
    uint64_t before = accountant->used();
    auto trie = r.TrieView({0, 1});
    EXPECT_GT(accountant->used(), before);
    trie.reset();
    r.Clear();  // drops the cached trie with the storage
  }
  EXPECT_EQ(accountant->used(), 0u);  // everything released on unwind
}

TEST(TrieViewTest, EmptyRelationYieldsEmptyUncachedTrie) {
  Relation r(2);
  auto t = r.TrieView({0, 1});
  EXPECT_EQ(t->rows(), 0u);
  EXPECT_EQ(t->arity(), 2u);
}

// ---------------------------------------------------------------------------
// Generalized hypertree decompositions.
// ---------------------------------------------------------------------------

TEST(HypertreeTest, AcyclicChainHasWidthOne) {
  Hypergraph h(4);
  h.AddEdge({0, 1});
  h.AddEdge({1, 2});
  h.AddEdge({2, 3});
  auto d = BuildHypertreeDecomposition(h).ValueOrDie();
  EXPECT_TRUE(VerifyHypertreeDecomposition(h, d));
  EXPECT_EQ(d.width(), 1u);
}

TEST(HypertreeTest, TriangleHasWidthTwo) {
  Hypergraph h(3);
  h.AddEdge({0, 1});
  h.AddEdge({1, 2});
  h.AddEdge({0, 2});
  auto d = BuildHypertreeDecomposition(h).ValueOrDie();
  EXPECT_TRUE(VerifyHypertreeDecomposition(h, d));
  EXPECT_EQ(d.width(), 2u);  // one bag {0,1,2}, two binary edges cover it
}

TEST(HypertreeTest, TriangleWithTailSplitsIntoTwoBags) {
  Hypergraph h(4);
  h.AddEdge({0, 1});
  h.AddEdge({1, 2});
  h.AddEdge({0, 2});
  h.AddEdge({2, 3});
  auto d = BuildHypertreeDecomposition(h).ValueOrDie();
  EXPECT_TRUE(VerifyHypertreeDecomposition(h, d));
  EXPECT_EQ(d.width(), 2u);
  EXPECT_GE(d.size(), 2u);  // the tail does not enter the cyclic core bag
}

TEST(HypertreeTest, EdgelessHypergraphIsRejected) {
  Hypergraph h(3);
  EXPECT_FALSE(BuildHypertreeDecomposition(h).ok());
}

TEST(HypertreeTest, RandomQueryHypergraphsVerify) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Database db = RandomBinaryDatabase(3, 20, 10, seed);
    for (int neq = 0; neq <= 1; ++neq) {
      ConjunctiveQuery q = RandomAcyclicNeqQuery(3, 4, neq, seed * 11 + neq);
      Hypergraph h = q.BuildHypergraph();
      if (h.num_edges() == 0) continue;
      auto d = BuildHypertreeDecomposition(h).ValueOrDie();
      EXPECT_TRUE(VerifyHypertreeDecomposition(h, d)) << "seed=" << seed;
      EXPECT_EQ(d.width(), 1u) << "seed=" << seed;  // acyclic: width 1
    }
  }
  // Cliques: every K_n with binary edges has a 2-edge-coverable single core.
  for (int n = 3; n <= 5; ++n) {
    Hypergraph h(n);
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) h.AddEdge({u, v});
    }
    auto d = BuildHypertreeDecomposition(h).ValueOrDie();
    EXPECT_TRUE(VerifyHypertreeDecomposition(h, d)) << "K_" << n;
  }
}

// ---------------------------------------------------------------------------
// Differential: WCOJ route vs binary plans vs the backtracking oracle.
// ---------------------------------------------------------------------------

Database WcojDifferentialGraphDb(uint64_t seed) {
  return GraphDatabase(GnpRandom(10, 0.35, seed));
}

class WcojDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WcojDifferentialTest, MatchesBinaryAndOracleAtAllWidths) {
  uint64_t seed = GetParam();
  Database db = WcojDifferentialGraphDb(seed);
  const char* queries[] = {
      "ans(x) :- E(x,y), E(y,z), E(z,x).",
      "ans(x, y, z) :- E(x,y), E(y,z), E(z,x).",
      "ans(x, w) :- E(x,y), E(y,z), E(z,w), E(w,x).",
      "ans(w) :- E(w,x), E(w,y), E(x,y), E(w,z), E(x,z), E(y,z).",
      "ans(x, t) :- E(x,y), E(y,z), E(z,x), E(z,t).",
      "ans(a) :- E(a, b), E(b, a), E(a, c), E(c, a), E(b, c).",
      // Inequalities keep the binary route (the WCOJ gate requires a
      // comparison-free core); included to pin the routing down.
      "ans(x) :- E(x,y), E(y,z), E(z,x), x != y.",
  };
  for (const char* text : queries) {
    SCOPED_TRACE(text);
    auto q = ParseConjunctive(text).ValueOrDie();
    auto oracle = BacktrackEvaluateCq(db, q).ValueOrDie();
    Relation reference(oracle.arity());
    bool first = true;
    for (bool wcoj : {false, true}) {
      for (size_t threads : {size_t{1}, size_t{4}}) {
        EngineOptions options;
        options.wcoj = wcoj;
        options.threads = threads;
        Engine engine(db, options);
        auto got = engine.Run(q);
        ASSERT_TRUE(got.ok()) << got.status();
        EXPECT_TRUE(got.value().EqualsAsSet(oracle))
            << "wcoj=" << wcoj << " threads=" << threads;
        if (first) {
          reference = std::move(got).value();
          first = false;
        } else {
          // Answers are sorted + deduplicated, so every route must agree
          // byte for byte, at any thread count.
          ASSERT_EQ(got.value().size(), reference.size());
          EXPECT_TRUE(got.value().data() == reference.data())
              << "wcoj=" << wcoj << " threads=" << threads;
        }
      }
    }
  }

  // The triangle must actually exercise the multiway operator.
  EngineOptions options;
  Engine engine(db, options);
  auto q = ParseConjunctive("ans(x) :- E(x,y), E(y,z), E(z,x).").ValueOrDie();
  ASSERT_TRUE(engine.Run(q).ok());
  EXPECT_GT(engine.last_stats().plan.multiway_joins, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, WcojDifferentialTest,
                         ::testing::Range<uint64_t>(1, 7));

// ---------------------------------------------------------------------------
// Fault injection and plan-cache interaction.
// ---------------------------------------------------------------------------

TEST(WcojFaultTest, MultiwayOperatorFailsCleanlyAndRecovers) {
  Database db = GraphDatabase(GnpRandom(12, 0.3, 47));
  Engine engine(db);
  const char* text = "ans(x) :- E(x, y), E(y, z), E(z, x).";
  auto baseline = engine.RunText(text).ValueOrDie();
  FaultInjector::ArmPoint("executor.multiway", 1);
  auto failed = engine.RunText(text);
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.status().message().find("executor.multiway"),
            std::string::npos);
  EXPECT_TRUE(FaultInjector::fired());
  FaultInjector::Disarm();
  auto recovered = engine.RunText(text);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered.value().data() == baseline.data());
}

TEST(WcojPlanCacheTest, WcojFlagDiscriminatesCacheEntries) {
  Database db = GraphDatabase(GnpRandom(12, 0.3, 7));
  const char* text = "ans(x) :- E(x, y), E(y, z), E(z, x).";
  EngineOptions options;
  Engine engine(db, options);
  auto wcoj_answer = engine.RunText(text).ValueOrDie();
  EXPECT_GT(engine.last_stats().plan.multiway_joins, 0u);
  // Flipping the option must not satisfy the request from the wcoj entry.
  engine.options().wcoj = false;
  auto binary_answer = engine.RunText(text).ValueOrDie();
  EXPECT_EQ(engine.last_stats().plan.multiway_joins, 0u);
  EXPECT_TRUE(binary_answer.data() == wcoj_answer.data());
}

// ---------------------------------------------------------------------------
// Hardened active-domain (FO) evaluation: abort and reuse.
// ---------------------------------------------------------------------------

TEST(FoHardeningTest, CancellationAbortsAndEngineIsReusable) {
  Database db = GraphDatabase(GnpRandom(30, 0.2, 11));
  auto q = ParseFirstOrder(
               "ans(x) := forall y . (E(x, y) or (exists z . E(y, z))).")
               .ValueOrDie();
  QueryContext qc;
  EngineOptions options;
  options.query_ctx = &qc;
  Engine engine(db, options);
  auto baseline = engine.Run(q);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  qc.Cancel();
  auto cancelled = engine.Run(q);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);
  qc.Reset();
  auto again = engine.Run(q);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.value().EqualsAsSet(baseline.value()));
}

TEST(FoHardeningTest, DeadlineAbortsActiveDomainEvaluation) {
  // Big enough that the n^O(v) algebra cannot finish in a millisecond: the
  // complement of a 3-variable subformula alone is ~|adom|^3 rows.
  Database db = GraphDatabase(GnpRandom(140, 0.05, 13));
  auto q = ParseFirstOrder(
               "ans(x) := forall y . (E(x, y) or "
               "(exists z . (E(y, z) and not E(z, x)))).")
               .ValueOrDie();
  EngineOptions options;
  options.limits.max_wall_ms = 1;
  Engine engine(db, options);
  auto result = engine.Run(q);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  // Same engine, deadline lifted: the evaluation completes.
  engine.options().limits.max_wall_ms = 0;
  auto ok = engine.Run(q);
  EXPECT_TRUE(ok.ok()) << ok.status();
}

TEST(FoHardeningTest, MemoryBudgetAbortsActiveDomainEvaluation) {
  Database db = GraphDatabase(GnpRandom(120, 0.05, 17));
  auto q = ParseFirstOrder("ans(x) := forall y . not E(x, y).").ValueOrDie();
  EngineOptions options;
  options.limits.max_bytes = 1 << 14;  // 16 KiB: trips on the first power
  Engine engine(db, options);
  auto result = engine.Run(q);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  engine.options().limits.max_bytes = 0;
  auto ok = engine.Run(q);
  EXPECT_TRUE(ok.ok()) << ok.status();
}

}  // namespace
}  // namespace paraquery

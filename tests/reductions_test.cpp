// Round-trip correctness of every reduction in the paper: each construction
// is exercised on random instances and checked against independent ground
// truth on both sides.
#include <gtest/gtest.h>

#include "circuit/weighted_sat.hpp"
#include "common/rng.hpp"
#include "eval/fo.hpp"
#include "eval/inequality.hpp"
#include "eval/naive.hpp"
#include "eval/ucq.hpp"
#include "graph/clique.hpp"
#include "graph/generators.hpp"
#include "graph/hamiltonian.hpp"
#include "query/parser.hpp"
#include "reductions/circuit_to_fo.hpp"
#include "reductions/clique_to_comparisons.hpp"
#include "reductions/clique_to_cq.hpp"
#include "reductions/cq_to_clique.hpp"
#include "reductions/cq_to_w2cnf.hpp"
#include "reductions/hampath_to_neq.hpp"
#include "reductions/positive_to_wformula.hpp"
#include "reductions/schema_folding.hpp"
#include "reductions/wformula_to_positive.hpp"

namespace paraquery {
namespace {

// ---------- clique -> CQ (Theorem 1 lower bound) ----------

class CliqueToCqTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(CliqueToCqTest, QueryNonemptyIffClique) {
  auto [seed, k] = GetParam();
  Graph g = GnpRandom(14, 0.45, seed);
  CliqueToCqResult red = CliqueToCq(g, k);
  EXPECT_EQ(red.query.NumVariables(), k);
  bool clique = FindCliqueBb(g, k).has_value();
  bool query = NaiveCqNonempty(red.db, red.query).ValueOrDie();
  EXPECT_EQ(clique, query) << "k=" << k << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CliqueToCqTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(1, 2, 3, 4)));

TEST(CliqueToCqTest, PlantedCliqueIsFound) {
  Graph g = PlantedClique(25, 0.15, 5, 7);
  CliqueToCqResult red = CliqueToCq(g, 5);
  EXPECT_TRUE(NaiveCqNonempty(red.db, red.query).ValueOrDie());
  EXPECT_EQ(red.query.QuerySize(), 1u + 3u * (5u * 4u / 2u));
}

// ---------- CQ -> weighted 2-CNF (Theorem 1 upper bound, parameter q) ----

class CqToW2CnfTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CqToW2CnfTest, SatisfiableIffQueryNonempty) {
  Rng rng(GetParam());
  Database db;
  RelId r = db.AddRelation("R", 2).ValueOrDie();
  RelId s = db.AddRelation("S", 2).ValueOrDie();
  for (int i = 0; i < 12; ++i) {
    db.relation(r).Add({rng.Range(0, 4), rng.Range(0, 4)});
    db.relation(s).Add({rng.Range(0, 4), rng.Range(0, 4)});
  }
  // Cyclic query on purpose: the reduction does not need acyclicity.
  auto q = ParseConjunctive("p() :- R(x, y), S(y, z), R(z, x).").ValueOrDie();
  auto red = CqToW2Cnf(db, q).ValueOrDie();
  EXPECT_EQ(red.k, 3);
  auto sol = SolveGroupedW2Cnf(red.instance);
  bool truth = NaiveCqNonempty(db, q).ValueOrDie();
  EXPECT_EQ(sol.has_value(), truth);
  if (sol.has_value()) {
    // Decoded binding must satisfy the query: check each atom via naive
    // containment of the induced head... simpler: verify atom-by-atom.
    auto binding = DecodeW2CnfSolution(db, q, red, *sol).ValueOrDie();
    for (const Atom& a : q.body) {
      RelId id = db.FindRelation(a.relation).ValueOrDie();
      ValueVec row;
      for (const Term& t : a.terms) {
        row.push_back(t.is_var() ? binding[t.var()] : t.value());
      }
      EXPECT_TRUE(db.relation(id).Contains(row));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CqToW2CnfTest, ::testing::Range<uint64_t>(1, 16));

TEST(CqToW2CnfTest, RejectsComparisons) {
  Database db;
  db.AddRelation("R", 2).ValueOrDie();
  auto q = ParseConjunctive("p() :- R(x, y), x != y.").ValueOrDie();
  EXPECT_FALSE(CqToW2Cnf(db, q).ok());
}

TEST(CqToW2CnfTest, ConstantsAndRepeatsFilterTuples) {
  Database db;
  RelId r = db.AddRelation("R", 3).ValueOrDie();
  db.relation(r).Add({1, 1, 5});
  db.relation(r).Add({1, 2, 5});
  db.relation(r).Add({2, 2, 6});
  auto q = ParseConjunctive("p() :- R(x, x, 5).").ValueOrDie();
  auto red = CqToW2Cnf(db, q).ValueOrDie();
  ASSERT_EQ(red.instance.groups.size(), 1u);
  EXPECT_EQ(red.instance.groups[0].size(), 1u);  // only (1,1,5)
}

// ---------- schema folding (Theorem 1 upper bound, parameter v) ----------

class SchemaFoldingTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SchemaFoldingTest, FoldedQueryEquivalent) {
  Rng rng(GetParam());
  Database db;
  RelId r = db.AddRelation("R", 2).ValueOrDie();
  RelId s = db.AddRelation("S", 2).ValueOrDie();
  RelId t = db.AddRelation("T", 3).ValueOrDie();
  for (int i = 0; i < 15; ++i) {
    db.relation(r).Add({rng.Range(0, 4), rng.Range(0, 4)});
    db.relation(s).Add({rng.Range(0, 4), rng.Range(0, 4)});
    db.relation(t).Add({rng.Range(0, 4), rng.Range(0, 4), rng.Range(0, 4)});
  }
  // Two atoms share the variable set {x,y}: they must be intersected; the
  // T atom folds separately; a constant atom tests selection.
  auto q = ParseConjunctive(
               "ans(x, z) :- R(x, y), S(x, y), T(y, z, z), R(x, 2).")
               .ValueOrDie();
  auto folded = FoldSchema(db, q).ValueOrDie();
  // Folded query has one atom per distinct variable set: {x,y}, {y,z}, {x}.
  EXPECT_EQ(folded.query.body.size(), 3u);
  EXPECT_LE(folded.query.body.size(),
            static_cast<size_t>(1) << q.NumVariables());
  auto lhs = NaiveEvaluateCq(db, q).ValueOrDie();
  auto rhs = NaiveEvaluateCq(folded.db, folded.query).ValueOrDie();
  EXPECT_TRUE(lhs.EqualsAsSet(rhs));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchemaFoldingTest,
                         ::testing::Range<uint64_t>(1, 13));

// ---------- weighted formula -> positive query (parameter v) ----------

class WFormulaToPositiveTest : public ::testing::TestWithParam<uint64_t> {};

// Random small formula as a tree circuit with NOTs.
Circuit RandomFormula(Rng* rng, int inputs) {
  Circuit c(inputs);
  // Build a random tree bottom-up over leaf references.
  std::vector<int> nodes;
  for (int i = 0; i < inputs; ++i) {
    nodes.push_back(rng->Chance(0.3) ? c.AddGate(GateKind::kNot, {i}) : i);
  }
  while (nodes.size() > 1) {
    int a = nodes.back();
    nodes.pop_back();
    int b = nodes.back();
    nodes.pop_back();
    int g = rng->Chance(0.5) ? c.AddGate(GateKind::kAnd, {a, b})
                             : c.AddGate(GateKind::kOr, {a, b});
    if (rng->Chance(0.2)) g = c.AddGate(GateKind::kNot, {g});
    nodes.push_back(g);
  }
  c.SetOutput(nodes[0]);
  return c;
}

TEST_P(WFormulaToPositiveTest, QueryTrueIffWeightedSat) {
  Rng rng(GetParam());
  Circuit formula = RandomFormula(&rng, 4 + static_cast<int>(rng.Below(2)));
  for (int k = 1; k <= 3; ++k) {
    auto red = WFormulaToPositive(formula, k).ValueOrDie();
    EXPECT_EQ(red.query.NumVariables(), k);
    bool sat = WeightedCircuitSat(formula, k).has_value();
    bool query = PositiveNonempty(red.db, red.query).ValueOrDie();
    EXPECT_EQ(sat, query) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WFormulaToPositiveTest,
                         ::testing::Range<uint64_t>(1, 13));

// ---------- prenex positive -> weighted formula (membership) ----------

class PositiveToWFormulaTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PositiveToWFormulaTest, WeightedSatIffQueryTrue) {
  Rng rng(GetParam());
  Database db;
  RelId r = db.AddRelation("R", 2).ValueOrDie();
  RelId a = db.AddRelation("A", 1).ValueOrDie();
  for (int i = 0; i < 10; ++i) {
    db.relation(r).Add({rng.Range(0, 3), rng.Range(0, 3)});
  }
  db.relation(a).Add({rng.Range(0, 3)});
  auto q = ParsePositive(
               "p() := exists x, y, z . ((R(x, y) or R(y, x)) and A(z) "
               "and (R(y, z) or A(x))).")
               .ValueOrDie();
  auto red = PrenexPositiveToWFormula(db, q).ValueOrDie();
  EXPECT_EQ(red.k, 3);
  bool sat = WeightedCircuitSat(red.formula, red.k).has_value();
  bool truth = PositiveNonempty(db, q).ValueOrDie();
  EXPECT_EQ(sat, truth);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PositiveToWFormulaTest,
                         ::testing::Range<uint64_t>(1, 13));

TEST(PositiveToWFormulaTest, RejectsNonPrenex) {
  Database db;
  RelId a = db.AddRelation("A", 1).ValueOrDie();
  db.relation(a).Add({1});
  auto q = ParsePositive("p() := (exists x . A(x)) and (exists y . A(y)).")
               .ValueOrDie();
  EXPECT_FALSE(PrenexPositiveToWFormula(db, q).ok());
  auto q2 = ParsePositive("ans(x) := exists y . R(x, y).");
  // Open query rejected.
  if (q2.ok()) {
    EXPECT_FALSE(PrenexPositiveToWFormula(db, q2.value()).ok());
  }
}

// ---------- monotone circuit -> FO (Theorem 1, first-order row) ----------

Circuit RandomMonotoneCircuit(Rng* rng, int inputs, int extra_gates) {
  Circuit c(inputs);
  for (int i = 0; i < extra_gates; ++i) {
    GateKind kind = rng->Chance(0.5) ? GateKind::kAnd : GateKind::kOr;
    int fan_in = 1 + static_cast<int>(rng->Below(3));
    std::vector<int> ins;
    for (int j = 0; j < fan_in; ++j) {
      ins.push_back(static_cast<int>(rng->Below(
          static_cast<uint64_t>(c.num_gates()))));
    }
    c.AddGate(kind, ins);
  }
  c.SetOutput(c.num_gates() - 1);
  return c;
}

class CircuitToFoTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CircuitToFoTest, FoQueryTrueIffWeightedSat) {
  // Small circuits on purpose: FO evaluation is n^{O(v)} with v = k + 2 —
  // exactly the scaling the paper predicts (benches explore it at scale).
  Rng rng(GetParam());
  Circuit circuit = RandomMonotoneCircuit(&rng, 4, 3);
  for (int k = 1; k <= 2; ++k) {
    auto red = MonotoneCircuitToFo(circuit, k).ValueOrDie();
    // k + 2 variables, exactly as the paper counts.
    EXPECT_EQ(red.query.NumVariables(), k + 2);
    bool sat = WeightedMonotoneCircuitSat(circuit, k).has_value();
    bool fo = FirstOrderNonempty(red.db, red.query).ValueOrDie();
    EXPECT_EQ(sat, fo) << "k=" << k << " top=" << red.top_level;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CircuitToFoTest,
                         ::testing::Range<uint64_t>(1, 16));

TEST(CircuitToFoTest, AndOrBasics) {
  // AND(x1..x4): weight-k sat iff k == 4... (monotone: k <= n with padding:
  // satisfiable iff k >= 4; exact k semantics require >= 4 trues).
  Circuit and4 = AndOfInputs(4);
  auto red3 = MonotoneCircuitToFo(and4, 3).ValueOrDie();
  EXPECT_FALSE(FirstOrderNonempty(red3.db, red3.query).ValueOrDie());
  auto red4 = MonotoneCircuitToFo(and4, 4).ValueOrDie();
  EXPECT_TRUE(FirstOrderNonempty(red4.db, red4.query).ValueOrDie());

  Circuit or4 = OrOfInputs(4);
  auto red1 = MonotoneCircuitToFo(or4, 1).ValueOrDie();
  EXPECT_TRUE(FirstOrderNonempty(red1.db, red1.query).ValueOrDie());
}

// ---------- footnote 2: CQ / positive -> clique ----------

class CqToCliqueTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CqToCliqueTest, CliqueIffQueryNonempty) {
  Rng rng(GetParam());
  Database db;
  RelId r = db.AddRelation("R", 2).ValueOrDie();
  RelId s = db.AddRelation("S", 1).ValueOrDie();
  for (int i = 0; i < 10; ++i) {
    db.relation(r).Add({rng.Range(0, 4), rng.Range(0, 4)});
  }
  for (int i = 0; i < 3; ++i) db.relation(s).Add({rng.Range(0, 4)});
  auto q = ParseConjunctive("p() :- R(x, y), R(y, z), S(x).").ValueOrDie();
  auto inst = CqDecisionToClique(db, q).ValueOrDie();
  EXPECT_EQ(inst.k, 3);
  bool clique = FindCliqueBb(inst.graph, inst.k).has_value();
  bool truth = NaiveCqNonempty(db, q).ValueOrDie();
  EXPECT_EQ(clique, truth);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CqToCliqueTest,
                         ::testing::Range<uint64_t>(1, 16));

class PositiveToCliqueTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PositiveToCliqueTest, PaddedUnionPreservesAnswer) {
  Rng rng(GetParam());
  Database db;
  RelId r = db.AddRelation("R", 2).ValueOrDie();
  RelId a = db.AddRelation("A", 1).ValueOrDie();
  for (int i = 0; i < 8; ++i) {
    db.relation(r).Add({rng.Range(0, 3), rng.Range(0, 3)});
  }
  if (rng.Chance(0.5)) db.relation(a).Add({rng.Range(0, 3)});
  // Disjuncts of different sizes force the padding path.
  auto q = ParsePositive(
               "p() := (exists x . A(x)) or "
               "(exists x, y, z . (R(x, y) and R(y, z) and R(z, x))).")
               .ValueOrDie();
  auto inst = PositiveToClique(db, q).ValueOrDie();
  bool clique = FindCliqueBb(inst.graph, inst.k).has_value();
  bool truth = PositiveNonempty(db, q).ValueOrDie();
  EXPECT_EQ(clique, truth);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PositiveToCliqueTest,
                         ::testing::Range<uint64_t>(1, 16));

// ---------- Hamiltonian path -> acyclic ≠ query (Section 5) ----------

class HamPathTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HamPathTest, QueryNonemptyIffHamiltonianPath) {
  Rng rng(GetParam());
  int n = 5 + static_cast<int>(rng.Below(3));
  Graph g = GnpRandom(n, 0.45, rng.Next());
  HamPathToNeqResult red = HamPathToNeq(g);
  EXPECT_TRUE(red.query.IsAcyclic());
  EXPECT_TRUE(red.query.HasOnlyInequalities());
  bool ham = FindHamiltonianPath(g).has_value();
  bool naive = NaiveCqNonempty(red.db, red.query).ValueOrDie();
  EXPECT_EQ(ham, naive);
  // The Theorem 2 engine also decides it (k = n here, so only for small n).
  IneqOptions mc;
  mc.driver = IneqOptions::Driver::kMonteCarlo;
  mc.mc_error_exponent = 3.0;
  mc.seed = 42;
  bool fpt = IneqNonempty(red.db, red.query, mc).ValueOrDie();
  if (ham) {
    // Monte Carlo may miss with tiny probability; these seeds succeed.
    EXPECT_TRUE(fpt);
  } else {
    EXPECT_FALSE(fpt);  // soundness is unconditional
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HamPathTest, ::testing::Range<uint64_t>(1, 9));

TEST(HamPathTest, PathAndStar) {
  HamPathToNeqResult path = HamPathToNeq(PathGraph(6));
  EXPECT_TRUE(NaiveCqNonempty(path.db, path.query).ValueOrDie());
  Graph star(5);
  for (int i = 1; i < 5; ++i) star.AddEdge(0, i);
  HamPathToNeqResult s = HamPathToNeq(star);
  EXPECT_FALSE(NaiveCqNonempty(s.db, s.query).ValueOrDie());
}

// ---------- Theorem 3: clique -> acyclic comparison query ----------

TEST(CliqueToComparisonsTest, EncodingIsInjectiveAndOrdered) {
  int n = 7;
  std::set<Value> seen;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      for (int b = 0; b <= 1; ++b) {
        Value v = EncodeTriple(n, i, j, b);
        EXPECT_TRUE(seen.insert(v).second) << i << "," << j << "," << b;
      }
    }
  }
  // The paper's key identities: x_ji - x_ij = v_j - v_i  and
  // x'_ij - x_ji = n + v_i - v_j for clique witnesses.
  int vi = 2, vj = 5;
  EXPECT_EQ(EncodeTriple(n, vj, vi, 0) - EncodeTriple(n, vi, vj, 0),
            Value{vj - vi});
  EXPECT_EQ(EncodeTriple(n, vi, vj, 1) - EncodeTriple(n, vj, vi, 0),
            Value{n + vi - vj});
}

class CliqueToComparisonsTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(CliqueToComparisonsTest, QueryNonemptyIffClique) {
  // Naive evaluation of the comparison query is n^{O(k)} by design
  // (Theorem 3 is a hardness result), so the instances stay tiny.
  auto [seed, k] = GetParam();
  Graph g = GnpRandom(6, 0.5, seed);
  auto red = CliqueToComparisons(g, k).ValueOrDie();
  EXPECT_TRUE(red.query.IsAcyclic());
  EXPECT_TRUE(red.query.HasOrderComparisons());
  bool clique = FindCliqueBb(g, k).has_value();
  bool query = NaiveCqNonempty(red.db, red.query).ValueOrDie();
  EXPECT_EQ(clique, query) << "k=" << k << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CliqueToComparisonsTest,
    ::testing::Combine(::testing::Values(1, 2, 3), ::testing::Values(2, 3)));

TEST(CliqueToComparisonsTest, PlantedCliqueFound) {
  Graph g = PlantedClique(8, 0.2, 3, 11);
  auto red = CliqueToComparisons(g, 3).ValueOrDie();
  EXPECT_TRUE(NaiveCqNonempty(red.db, red.query).ValueOrDie());
}

TEST(CliqueToComparisonsTest, RejectsDegenerate) {
  Graph g(3);
  EXPECT_FALSE(CliqueToComparisons(g, 1).ok());
  EXPECT_FALSE(CliqueToComparisons(Graph(0), 2).ok());
}

}  // namespace
}  // namespace paraquery

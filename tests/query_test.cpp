#include <gtest/gtest.h>

#include "query/comparison_closure.hpp"
#include "query/conjunctive_query.hpp"
#include "query/datalog.hpp"
#include "query/first_order_query.hpp"
#include "query/parser.hpp"
#include "query/positive_query.hpp"

namespace paraquery {
namespace {

TEST(TermTest, VariablesAndConstants) {
  Term v = Term::Var(3);
  Term c = Term::Const(42);
  EXPECT_TRUE(v.is_var());
  EXPECT_TRUE(c.is_const());
  EXPECT_EQ(v.var(), 3);
  EXPECT_EQ(c.value(), 42);
  EXPECT_EQ(v, Term::Var(3));
  EXPECT_NE(v == c, true);
  EXPECT_FALSE(Term::Const(1) == Term::Var(1));
}

TEST(TermTest, AtomVariablesDeduped) {
  Atom a{"R", {Term::Var(1), Term::Const(5), Term::Var(0), Term::Var(1)}};
  EXPECT_EQ(a.Variables(), (std::vector<VarId>{1, 0}));
}

TEST(VarTableTest, InternFindFresh) {
  VarTable t;
  VarId x = t.Intern("x");
  EXPECT_EQ(t.Intern("x"), x);
  EXPECT_EQ(t.Find("x"), x);
  EXPECT_EQ(t.Find("y"), -1);
  VarId f = t.Fresh("x");
  EXPECT_NE(f, x);
  EXPECT_NE(t.name(f), "x");
}

TEST(ParseConjunctiveTest, BasicRule) {
  auto q = ParseConjunctive("ans(x, y) :- E(x, z), E(z, y).").ValueOrDie();
  EXPECT_EQ(q.head.size(), 2u);
  EXPECT_EQ(q.body.size(), 2u);
  EXPECT_EQ(q.NumVariables(), 3);
  EXPECT_EQ(q.body[0].relation, "E");
  EXPECT_TRUE(q.IsAcyclic());
  EXPECT_FALSE(q.HasComparisons());
}

TEST(ParseConjunctiveTest, ComparisonsAndConstants) {
  auto q =
      ParseConjunctive("g(e) :- EP(e, p), EP(e, q), p != q, e < 100.")
          .ValueOrDie();
  EXPECT_EQ(q.comparisons.size(), 2u);
  EXPECT_EQ(q.comparisons[0].op, CompareOp::kNeq);
  EXPECT_EQ(q.comparisons[1].op, CompareOp::kLt);
  EXPECT_TRUE(q.comparisons[1].rhs.is_const());
  EXPECT_EQ(q.comparisons[1].rhs.value(), 100);
  EXPECT_FALSE(q.HasOnlyInequalities());
  EXPECT_TRUE(q.HasOrderComparisons());
}

TEST(ParseConjunctiveTest, BooleanQuery) {
  auto q = ParseConjunctive("p() :- E(x, y).").ValueOrDie();
  EXPECT_TRUE(q.IsBoolean());
  EXPECT_EQ(q.NumVariables(), 2);
}

TEST(ParseConjunctiveTest, StringConstantsNeedDictionary) {
  EXPECT_FALSE(ParseConjunctive("p() :- R(x, 'alice').").ok());
  Dictionary dict;
  auto q = ParseConjunctive("p() :- R(x, 'alice').", &dict).ValueOrDie();
  EXPECT_EQ(q.body[0].terms[1].value(), dict.Find("alice"));
}

TEST(ParseConjunctiveTest, OutOfRangeIntegerLiteralRejected) {
  // Overflowing literals used to reach std::stoll and abort the process
  // with an uncaught std::out_of_range; literals in the dictionary's
  // reserved code range would alias interned strings' codes.
  auto overflow = ParseConjunctive("p(x) :- R(x, 99999999999999999999).");
  EXPECT_EQ(overflow.status().code(), StatusCode::kInvalidArgument);
  auto reserved = ParseConjunctive("p(x) :- R(x, 4611686018427387904).");
  EXPECT_EQ(reserved.status().code(), StatusCode::kInvalidArgument);
  // The largest admissible literal still parses.
  auto ok = ParseConjunctive("p(x) :- R(x, 4611686018427387903).");
  EXPECT_TRUE(ok.ok());
}

TEST(ParseConjunctiveTest, UnsafeHeadRejected) {
  auto q = ParseConjunctive("ans(x, w) :- E(x, y).");
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParseConjunctiveTest, UnsafeComparisonRejected) {
  auto q = ParseConjunctive("p() :- E(x, y), z < x.");
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParseConjunctiveTest, SyntaxErrors) {
  EXPECT_FALSE(ParseConjunctive("ans(x :- E(x).").ok());
  EXPECT_FALSE(ParseConjunctive("ans(x) : E(x).").ok());
  EXPECT_FALSE(ParseConjunctive("ans(x) :- E(x)").ok());  // missing dot
  EXPECT_FALSE(ParseConjunctive("ans(x) :- E(x). extra").ok());
  EXPECT_FALSE(ParseConjunctive("ans(x) :- E(x), y ! z.").ok());
}

TEST(ParseConjunctiveTest, CommentsIgnored) {
  auto q = ParseConjunctive(
      "% full comment line\n"
      "ans(x) :- E(x, y). # trailing comment");
  EXPECT_TRUE(q.ok());
}

TEST(ConjunctiveQueryTest, QuerySizeCountsSymbols) {
  auto q = ParseConjunctive("ans(x) :- E(x, y), F(y), x != y.").ValueOrDie();
  // head: 1+1, E: 1+2, F: 1+1, comparison: 3.
  EXPECT_EQ(q.QuerySize(), 2u + 3u + 2u + 3u);
}

TEST(ConjunctiveQueryTest, HeadAndBodyVariables) {
  auto q = ParseConjunctive("ans(x, x) :- E(x, y), F(z).").ValueOrDie();
  EXPECT_EQ(q.HeadVariables().size(), 1u);
  EXPECT_EQ(q.BodyVariables().size(), 3u);
}

TEST(ConjunctiveQueryTest, CyclicQueryDetected) {
  auto q = ParseConjunctive("p() :- E(x, y), E(y, z), E(x, z).").ValueOrDie();
  EXPECT_FALSE(q.IsAcyclic());
}

TEST(ConjunctiveQueryTest, InequalityNotPartOfHypergraph) {
  // The paper's point: the ≠ atom does not add a hyperedge.
  auto q =
      ParseConjunctive("g(e) :- EP(e, p), EP(e, q), p != q.").ValueOrDie();
  EXPECT_TRUE(q.IsAcyclic());
  Hypergraph h = q.BuildHypergraph();
  EXPECT_EQ(h.num_edges(), 2u);
}

TEST(ConjunctiveQueryTest, BindHeadSubstitutesConstants) {
  auto q = ParseConjunctive("ans(x, y) :- E(x, y), x != y.").ValueOrDie();
  ConjunctiveQuery bound = q.BindHead({7, 8});
  EXPECT_TRUE(bound.IsBoolean());
  EXPECT_TRUE(bound.body[0].terms[0].is_const());
  EXPECT_EQ(bound.body[0].terms[0].value(), 7);
  EXPECT_TRUE(bound.comparisons[0].lhs.is_const());
  EXPECT_EQ(bound.comparisons[0].rhs.value(), 8);
}

TEST(ConjunctiveQueryTest, ToStringRoundTrips) {
  const char* text = "ans(x) :- E(x,y), x != y.";
  auto q = ParseConjunctive(text).ValueOrDie();
  auto q2 = ParseConjunctive(q.ToString()).ValueOrDie();
  EXPECT_EQ(q.ToString(), q2.ToString());
}

TEST(ParseFirstOrderTest, QuantifiersAndConnectives) {
  auto q = ParseFirstOrder(
               "q(x) := exists y . (E(x, y) and not forall z . "
               "(E(y, z) or z = x)).")
               .ValueOrDie();
  EXPECT_EQ(q.head.size(), 1u);
  EXPECT_EQ(q.FreeVariables(), (std::vector<VarId>{q.vars.Find("x")}));
  EXPECT_FALSE(q.IsPositive());
}

TEST(ParseFirstOrderTest, QuantifierScopeIsMaximal) {
  auto q = ParseFirstOrder("p() := exists x . E(x, x) and F(x).").ValueOrDie();
  // 'and F(x)' is inside the quantifier: no free variables.
  EXPECT_TRUE(q.FreeVariables().empty());
}

TEST(ParseFirstOrderTest, FreeVariableMustBeInHead) {
  auto q = ParseFirstOrder("p() := E(x, y).");
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParseFirstOrderTest, ShadowingIsRepresentable) {
  // Inner 'forall x' rebinds x; outer x stays free.
  auto q = ParseFirstOrder(
               "q(x) := exists y . (E(x, y) and forall x . E(y, x)).")
               .ValueOrDie();
  EXPECT_EQ(q.FreeVariables().size(), 1u);
  EXPECT_EQ(q.NumVariables(), 2);  // x and y only, reuse counted once
}

TEST(ParseFirstOrderTest, MultiVarQuantifier) {
  auto q =
      ParseFirstOrder("p() := exists x, y . E(x, y).").ValueOrDie();
  EXPECT_TRUE(q.FreeVariables().empty());
  EXPECT_EQ(q.QuerySize(), 1u + (1u + 2u) + (1u + 2u));  // head + atom + ∃xy
}

TEST(PositiveQueryTest, AcceptsPositive) {
  auto q = ParsePositive("p() := exists x . (E(x, x) or F(x)).");
  EXPECT_TRUE(q.ok());
}

TEST(PositiveQueryTest, RejectsNegation) {
  EXPECT_FALSE(ParsePositive("p() := not E(1, 2).").ok());
  EXPECT_FALSE(ParsePositive("p() := forall x . E(x, x).").ok());
  EXPECT_FALSE(ParsePositive("p() := exists x . x != 1.").ok());
}

TEST(PositiveQueryTest, UcqExpansionDistributes) {
  // (A or B) and (C or D) -> 4 disjuncts.
  auto q = ParsePositive(
               "p() := exists x . ((A(x) or B(x)) and (C(x) or D(x))).")
               .ValueOrDie();
  auto cqs = q.ToUnionOfCqs().ValueOrDie();
  EXPECT_EQ(cqs.size(), 4u);
  for (const auto& cq : cqs) EXPECT_EQ(cq.body.size(), 2u);
}

TEST(PositiveQueryTest, UcqStandardizesApart) {
  // The same variable name x is quantified twice; the disjunct must use two
  // distinct variables after expansion.
  auto q = ParsePositive(
               "p() := (exists x . A(x)) and (exists x . B(x)).")
               .ValueOrDie();
  auto cqs = q.ToUnionOfCqs().ValueOrDie();
  ASSERT_EQ(cqs.size(), 1u);
  const auto& cq = cqs[0];
  ASSERT_EQ(cq.body.size(), 2u);
  EXPECT_NE(cq.body[0].terms[0].var(), cq.body[1].terms[0].var());
}

TEST(PositiveQueryTest, UcqRespectsDisjunctLimit) {
  std::string text = "p() := exists x . (";
  for (int i = 0; i < 12; ++i) {
    if (i > 0) text += " and ";
    text += "(A(x) or B(x))";
  }
  text += ").";
  auto q = ParsePositive(text).ValueOrDie();
  auto cqs = q.ToUnionOfCqs(/*max_disjuncts=*/100);
  EXPECT_EQ(cqs.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(q.ToUnionOfCqs().ValueOrDie().size(), 4096u);
}

TEST(PositiveQueryTest, HeadVariablesSurviveExpansion) {
  auto q = ParsePositive("ans(x) := A(x) or (exists y . R(x, y)).")
               .ValueOrDie();
  auto cqs = q.ToUnionOfCqs().ValueOrDie();
  ASSERT_EQ(cqs.size(), 2u);
  for (const auto& cq : cqs) {
    ASSERT_EQ(cq.head.size(), 1u);
    EXPECT_TRUE(cq.head[0].is_var());
  }
}

TEST(ParseDatalogTest, TransitiveClosure) {
  auto prog = ParseDatalog(
                  "tc(x, y) :- E(x, y).\n"
                  "tc(x, y) :- E(x, z), tc(z, y).\n")
                  .ValueOrDie();
  EXPECT_EQ(prog.rules.size(), 2u);
  EXPECT_EQ(prog.goal, "tc");
  EXPECT_EQ(prog.IdbRelations(), (std::vector<std::string>{"tc"}));
  EXPECT_TRUE(prog.IsIdb("tc"));
  EXPECT_FALSE(prog.IsIdb("E"));
  EXPECT_EQ(prog.MaxIdbArity(), 2);
  EXPECT_EQ(prog.MaxRuleVariables(), 3);
}

TEST(ParseDatalogTest, ExplicitGoal) {
  auto prog = ParseDatalog(
                  "a(x) :- E(x, x).\n"
                  "b(x) :- a(x).\n"
                  "@goal b.\n")
                  .ValueOrDie();
  EXPECT_EQ(prog.goal, "b");
}

TEST(ParseDatalogTest, ArityMismatchRejected) {
  auto prog = ParseDatalog(
      "a(x) :- E(x, y).\n"
      "b(x) :- E(x).\n");
  EXPECT_EQ(prog.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParseDatalogTest, GoalMustBeIdb) {
  auto prog = ParseDatalog("a(x) :- E(x, x). @goal E.");
  EXPECT_FALSE(prog.ok());
}

TEST(ParseDatalogTest, UnsafeRuleRejected) {
  auto prog = ParseDatalog("a(x, w) :- E(x, x).");
  EXPECT_FALSE(prog.ok());
}

TEST(ComparisonClosureTest, ConsistentChainUntouched) {
  auto q = ParseConjunctive("p() :- R(x, y, z), x < y, y < z.").ValueOrDie();
  auto closure = CollapseComparisons(q).ValueOrDie();
  EXPECT_TRUE(closure.consistent);
  EXPECT_EQ(closure.rewritten.comparisons.size(), 2u);
}

TEST(ComparisonClosureTest, StrictCycleInconsistent) {
  auto q =
      ParseConjunctive("p() :- R(x, y), x < y, y < x.").ValueOrDie();
  auto closure = CollapseComparisons(q).ValueOrDie();
  EXPECT_FALSE(closure.consistent);
}

TEST(ComparisonClosureTest, WeakCycleCollapsesToEquality) {
  auto q = ParseConjunctive("ans(x, y) :- R(x, y), x <= y, y <= x.")
               .ValueOrDie();
  auto closure = CollapseComparisons(q).ValueOrDie();
  ASSERT_TRUE(closure.consistent);
  EXPECT_TRUE(closure.rewritten.comparisons.empty());
  // Both head terms map to the same variable.
  EXPECT_EQ(closure.rewritten.head[0], closure.rewritten.head[1]);
}

TEST(ComparisonClosureTest, EqualityWithConstantSubstitutes) {
  auto q = ParseConjunctive("p() :- R(x, y), x = 5, y <= x.").ValueOrDie();
  auto closure = CollapseComparisons(q).ValueOrDie();
  ASSERT_TRUE(closure.consistent);
  EXPECT_TRUE(closure.rewritten.body[0].terms[0].is_const());
  EXPECT_EQ(closure.rewritten.body[0].terms[0].value(), 5);
  // y <= 5 survives.
  ASSERT_EQ(closure.rewritten.comparisons.size(), 1u);
  EXPECT_EQ(closure.rewritten.comparisons[0].op, CompareOp::kLe);
}

TEST(ComparisonClosureTest, ConstantsAreOrdered) {
  // x <= 3 and 5 <= x forces 5 <= x <= 3: inconsistent.
  auto q =
      ParseConjunctive("p() :- R(x), x <= 3, 5 <= x.").ValueOrDie();
  auto closure = CollapseComparisons(q).ValueOrDie();
  EXPECT_FALSE(closure.consistent);
}

TEST(ComparisonClosureTest, NeqCollapsedToSelfInconsistent) {
  auto q = ParseConjunctive("p() :- R(x, y), x <= y, y <= x, x != y.")
               .ValueOrDie();
  auto closure = CollapseComparisons(q).ValueOrDie();
  EXPECT_FALSE(closure.consistent);
}

TEST(ComparisonClosureTest, TrivialConstantComparisonsDropped) {
  auto q = ParseConjunctive("p() :- R(x), 1 < 2, x != 9.").ValueOrDie();
  auto closure = CollapseComparisons(q).ValueOrDie();
  ASSERT_TRUE(closure.consistent);
  ASSERT_EQ(closure.rewritten.comparisons.size(), 1u);
  EXPECT_EQ(closure.rewritten.comparisons[0].op, CompareOp::kNeq);
}

TEST(ComparisonClosureTest, DuplicateComparisonsDeduped) {
  auto q =
      ParseConjunctive("p() :- R(x, y), x < y, x < y, x != y, x != y.")
          .ValueOrDie();
  auto closure = CollapseComparisons(q).ValueOrDie();
  ASSERT_TRUE(closure.consistent);
  EXPECT_EQ(closure.rewritten.comparisons.size(), 2u);
}

TEST(ComparisonClosureTest, PaperSalaryExampleIsConsistent) {
  // Find employees with higher salary than their manager.
  auto q = ParseConjunctive(
               "g(e) :- EM(e, m), ES(e, s), ES(m, t), t < s.")
               .ValueOrDie();
  auto closure = CollapseComparisons(q).ValueOrDie();
  EXPECT_TRUE(closure.consistent);
  EXPECT_TRUE(closure.rewritten.IsAcyclic());
}

}  // namespace
}  // namespace paraquery

// Counting answers as a first-class workload: COUNT(*) / COUNT(keys) heads
// across the parser, classifier, planner (counting Yannakakis and the
// hypertree route), executor (Aggregate / SemijoinCount), UCQ
// inclusion-exclusion, and the active-domain fallback. The ground truth for
// every differential is brute force: evaluate the same body with ALL
// variables in the head (tuple mode), then group-count the distinct rows.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "core/classifier.hpp"
#include "core/engine.hpp"
#include "query/parser.hpp"
#include "workload/generators.hpp"

namespace paraquery {
namespace {

Engine MakeEngine(const Database& db, size_t threads) {
  EngineOptions options;
  options.threads = threads;
  options.morsel_rows = 32;  // small morsels so tiny test inputs parallelize
  return Engine(db, options);
}

void ExpectSameRelation(const Relation& a, const Relation& b) {
  ASSERT_EQ(a.arity(), b.arity());
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.data(), b.data());
}

// Brute-force reference: run `q`'s body with every variable in the head
// (tuple mode), then group-count the distinct assignments by `q`'s group
// keys. This is exactly the contract the counting engine must match.
Relation BruteForceCount(const Database& db, const ConjunctiveQuery& q) {
  ConjunctiveQuery enumq = q;
  enumq.answer = AnswerSpec::Tuples();
  enumq.head.clear();
  for (VarId v = 0; v < enumq.vars.size(); ++v) {
    enumq.head.push_back(Term::Var(v));
  }
  Relation rows = MakeEngine(db, 1).Run(enumq).ValueOrDie();
  rows.SortAndDedup();
  std::vector<size_t> gcols;
  for (const Term& t : q.head) gcols.push_back(static_cast<size_t>(t.var()));
  if (gcols.empty()) {
    Relation out(1);
    out.Add(std::vector<Value>{static_cast<Value>(rows.size())});
    return out;
  }
  std::map<std::vector<Value>, Value> groups;
  for (size_t r = 0; r < rows.size(); ++r) {
    std::vector<Value> key;
    for (size_t c : gcols) key.push_back(rows.At(r, c));
    ++groups[key];
  }
  Relation out(gcols.size() + 1);
  for (const auto& [key, count] : groups) {
    std::vector<Value> row = key;
    row.push_back(count);
    out.Add(row);
  }
  return out;
}

// Runs `q` at 1 and 4 threads, asserts byte-identical results, and returns
// the (shared) answer.
Relation RunBothWidths(const Database& db, const ConjunctiveQuery& q) {
  Result<Relation> sequential = MakeEngine(db, 1).Run(q);
  Result<Relation> parallel = MakeEngine(db, 4).Run(q);
  EXPECT_TRUE(sequential.ok()) << sequential.status();
  EXPECT_TRUE(parallel.ok()) << parallel.status();
  ExpectSameRelation(sequential.value(), parallel.value());
  return std::move(sequential).ValueOrDie();
}

// ---------------------------------------------------------------------------
// Parser and validation
// ---------------------------------------------------------------------------

TEST(CountingParseTest, CountStarAndGroupedHeads) {
  auto star = ParseConjunctive("COUNT(*) :- R(x, y).").ValueOrDie();
  EXPECT_EQ(star.answer.kind, AnswerSpec::Kind::kCount);
  EXPECT_TRUE(star.head.empty());

  auto grouped = ParseConjunctive("COUNT(x, y) :- R(x, y), S(y, z).")
                     .ValueOrDie();
  EXPECT_EQ(grouped.answer.kind, AnswerSpec::Kind::kGroupedCount);
  ASSERT_EQ(grouped.head.size(), 2u);
  EXPECT_TRUE(grouped.Validate().ok());
  // The printer round-trips the counting head.
  EXPECT_EQ(ParseConjunctive(grouped.ToString()).ValueOrDie().ToString(),
            grouped.ToString());
  EXPECT_EQ(grouped.ToString().rfind("COUNT(", 0), 0u);
}

TEST(CountingParseTest, LowercaseCountStaysARelationName) {
  auto q = ParseConjunctive("count(x) :- R(x, y).").ValueOrDie();
  EXPECT_EQ(q.answer.kind, AnswerSpec::Kind::kTuples);
  ASSERT_EQ(q.head.size(), 1u);
}

TEST(CountingParseTest, InvalidCountingHeadsAreRejected) {
  // Repeated group key (rejected at parse or validation time).
  auto dup = ParseConjunctive("COUNT(x, x) :- R(x, y).");
  EXPECT_TRUE(!dup.ok() || !dup.value().Validate().ok());
  // Group key not bound by the body (safety).
  auto unsafe = ParseConjunctive("COUNT(w) :- R(x, y).");
  EXPECT_TRUE(!unsafe.ok() || !unsafe.value().Validate().ok());
  // Constant group key.
  auto constant = ParseConjunctive("COUNT(3) :- R(x, y).");
  EXPECT_TRUE(!constant.ok() || !constant.value().Validate().ok());
  // Datalog rules do not take COUNT heads.
  auto datalog = ParseDatalog(
      "COUNT(x) :- E(x, y).\n"
      "p(x) :- E(x, x).\n");
  EXPECT_FALSE(datalog.ok());
}

TEST(CountingParseTest, FormulaCountingHeadValidation) {
  // Group keys must be free variables of the formula.
  auto bound = ParseFirstOrder("COUNT(y) := exists y. R(x, y).");
  if (bound.ok()) EXPECT_FALSE(bound.value().Validate().ok());
  auto good = ParseFirstOrder("COUNT(x) := exists y. R(x, y).").ValueOrDie();
  EXPECT_TRUE(good.Validate().ok());
  EXPECT_EQ(good.answer.kind, AnswerSpec::Kind::kGroupedCount);
}

// ---------------------------------------------------------------------------
// Classifier
// ---------------------------------------------------------------------------

TEST(CountingClassifyTest, AcyclicCountingIsFpAndRoutedToCountingEngine) {
  auto q = ParseConjunctive("COUNT(x) :- R(x, y), S(y, z).").ValueOrDie();
  Classification c = ClassifyConjunctive(q);
  EXPECT_TRUE(c.counting);
  EXPECT_EQ(c.engine, EngineChoice::kCounting);
  EXPECT_NE(c.counting_class.find("counting Yannakakis"), std::string::npos);
  EXPECT_NE(c.ToString().find("counting:"), std::string::npos);
  // The tuple-mode classification is untouched.
  auto t = ParseConjunctive("ans(x) :- R(x, y), S(y, z).").ValueOrDie();
  EXPECT_FALSE(ClassifyConjunctive(t).counting);
}

// ---------------------------------------------------------------------------
// Differentials against brute force (threads 1 and 4, byte-identical)
// ---------------------------------------------------------------------------

TEST(CountingDifferentialTest, RandomAcyclicQueries) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Database db = RandomBinaryDatabase(3, 100, 12, seed);
    ConjunctiveQuery base = RandomAcyclicNeqQuery(3, 4, 0, seed * 17);
    // Full-head tuple variant so CountingVariant has keys to keep.
    base.head.clear();
    for (VarId v = 0; v < base.vars.size(); ++v) {
      base.head.push_back(Term::Var(v));
    }
    for (size_t keys = 0; keys <= 2; ++keys) {
      ConjunctiveQuery q = CountingVariant(base, keys);
      Relation got = RunBothWidths(db, q);
      Relation want = BruteForceCount(db, q);
      ExpectSameRelation(got, want);
    }
  }
}

TEST(CountingDifferentialTest, AcyclicQueriesWithInequalities) {
  // Comparisons force the enumeration fallback; the answer contract is
  // unchanged.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Database db = RandomBinaryDatabase(3, 80, 10, seed);
    ConjunctiveQuery base = RandomAcyclicNeqQuery(3, 3, 2, seed * 29);
    base.head.clear();
    for (VarId v = 0; v < base.vars.size(); ++v) {
      base.head.push_back(Term::Var(v));
    }
    for (size_t keys = 0; keys <= 1; ++keys) {
      ConjunctiveQuery q = CountingVariant(base, keys);
      Relation got = RunBothWidths(db, q);
      Relation want = BruteForceCount(db, q);
      ExpectSameRelation(got, want);
    }
  }
}

TEST(CountingDifferentialTest, CyclicQueries) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Database db = RandomBinaryDatabase(1, 150, 14, seed);
    const char* texts[] = {
        "COUNT(*) :- R0(x, y), R0(y, z), R0(z, x).",
        "COUNT(x) :- R0(x, y), R0(y, z), R0(z, x).",
        "COUNT(x, z) :- R0(x, y), R0(y, z), R0(z, w), R0(w, x).",
    };
    for (const char* text : texts) {
      auto q = ParseConjunctive(text).ValueOrDie();
      Relation got = RunBothWidths(db, q);
      Relation want = BruteForceCount(db, q);
      ExpectSameRelation(got, want);
    }
  }
}

TEST(CountingDifferentialTest, ComparisonClosureEdgeCases) {
  Database db = RandomBinaryDatabase(1, 60, 8, 5);
  // x = y merges the two group keys: the collapsed query is no longer a
  // valid counting head, so the engine must fall back to the original.
  auto merged = ParseConjunctive("COUNT(x, y) :- R0(x, y), x = y.")
                    .ValueOrDie();
  ExpectSameRelation(RunBothWidths(db, merged), BruteForceCount(db, merged));
  // Constant-folded key.
  auto folded = ParseConjunctive("COUNT(x) :- R0(x, y), x = 3.").ValueOrDie();
  ExpectSameRelation(RunBothWidths(db, folded), BruteForceCount(db, folded));
  // Inconsistent closure: scalar count is 0, grouped count is empty.
  auto incon =
      ParseConjunctive("COUNT(*) :- R0(x, y), x < y, y < x.").ValueOrDie();
  Relation zero = MakeEngine(db, 1).Run(incon).ValueOrDie();
  ASSERT_EQ(zero.arity(), 1u);
  ASSERT_EQ(zero.size(), 1u);
  EXPECT_EQ(zero.At(0, 0), 0);
  auto gincon =
      ParseConjunctive("COUNT(x) :- R0(x, y), x < y, y < x.").ValueOrDie();
  Relation none = MakeEngine(db, 1).Run(gincon).ValueOrDie();
  EXPECT_EQ(none.arity(), 2u);
  EXPECT_EQ(none.size(), 0u);
}

TEST(CountingDifferentialTest, EmptyBodyAndEmptyInput) {
  Database db;
  db.AddRelation("R", 2).ValueOrDie();
  // Empty body: exactly one (empty) assignment.
  auto one = ParseConjunctive("COUNT(*) :- .").ValueOrDie();
  Relation r1 = MakeEngine(db, 1).Run(one).ValueOrDie();
  ASSERT_EQ(r1.size(), 1u);
  EXPECT_EQ(r1.At(0, 0), 1);
  // Empty relation: scalar 0, grouped empty.
  auto zero = ParseConjunctive("COUNT(*) :- R(x, y).").ValueOrDie();
  Relation r0 = MakeEngine(db, 1).Run(zero).ValueOrDie();
  ASSERT_EQ(r0.size(), 1u);
  EXPECT_EQ(r0.At(0, 0), 0);
  auto grouped = ParseConjunctive("COUNT(x) :- R(x, y).").ValueOrDie();
  Relation rg = MakeEngine(db, 1).Run(grouped).ValueOrDie();
  EXPECT_EQ(rg.size(), 0u);
  EXPECT_EQ(rg.arity(), 2u);
}

// ---------------------------------------------------------------------------
// The tentpole guarantee: acyclic counting never materializes the join
// ---------------------------------------------------------------------------

TEST(CountingBoundTest, StarJoinPeakStaysBoundedByInputs) {
  // One hub value, 50-wide arms: the join output has 50^3 = 125000 rows,
  // the inputs 150. Counting Yannakakis must answer without ever holding an
  // intermediate bigger than the (semijoin-reduced) inputs.
  Database db;
  const int kFanout = 50;
  size_t input_rows = 0;
  for (int i = 0; i < 3; ++i) {
    RelId r = db.AddRelation("R" + std::to_string(i), 2).ValueOrDie();
    for (int v = 0; v < kFanout; ++v) {
      db.relation(r).Add({0, 1000 * (i + 1) + v});
      ++input_rows;
    }
  }
  ConjunctiveQuery q = StarCountQuery(3);
  Engine engine = MakeEngine(db, 1);
  Relation out = engine.Run(q).ValueOrDie();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.At(0, 0), Value{kFanout} * kFanout * kFanout);
  const PlanStats& plan = engine.last_stats().plan;
  EXPECT_GT(plan.aggregates, 0u);
  EXPECT_GT(plan.semijoin_counts, 0u);
  // Peak intermediate cardinality is bounded by the input size — the
  // 125000-row join output never exists.
  EXPECT_LE(plan.peak_intermediate_rows, input_rows);
}

// ---------------------------------------------------------------------------
// UCQ inclusion-exclusion and the first-order fallback
// ---------------------------------------------------------------------------

TEST(CountingUcqTest, InclusionExclusionMatchesEnumeration) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Database db = RandomBinaryDatabase(2, 120, 15, seed);
    struct Case {
      const char* count_text;
      const char* enum_text;
      size_t keys;
    };
    const Case cases[] = {
        {"COUNT(x) := exists y. (R0(x, y) or R1(y, x)).",
         "ans(x) := exists y. (R0(x, y) or R1(y, x)).", 1},
        {"COUNT(x, y) := R0(x, y) or R1(x, y) or R0(y, x).",
         "ans(x, y) := R0(x, y) or R1(x, y) or R0(y, x).", 2},
        {"COUNT(*) := exists x. exists y. (R0(x, y) or R1(x, y)).",
         "ans(x, y) := R0(x, y) or R1(x, y).", 0},
    };
    for (const Case& c : cases) {
      auto seq = MakeEngine(db, 1).RunText(c.count_text);
      auto par = MakeEngine(db, 4).RunText(c.count_text);
      ASSERT_TRUE(seq.ok()) << seq.status();
      ASSERT_TRUE(par.ok()) << par.status();
      ExpectSameRelation(seq.value(), par.value());
      Relation rows = MakeEngine(db, 1).RunText(c.enum_text).ValueOrDie();
      if (c.keys == 0) {
        // COUNT(*) over the free pair (x, y): the count of distinct rows.
        // (The enum query keeps x, y free to expose them.)
        ASSERT_EQ(seq.value().size(), 1u);
        continue;
      }
      std::map<std::vector<Value>, Value> groups;
      for (size_t r = 0; r < rows.size(); ++r) {
        std::vector<Value> key;
        for (size_t col = 0; col < c.keys; ++col) key.push_back(rows.At(r, col));
        ++groups[key];
      }
      const Relation& got = seq.value();
      ASSERT_EQ(got.size(), groups.size());
      size_t i = 0;
      for (const auto& [key, count] : groups) {
        for (size_t col = 0; col < c.keys; ++col) {
          EXPECT_EQ(got.At(i, col), key[col]);
        }
        EXPECT_EQ(got.At(i, c.keys), count);
        ++i;
      }
    }
  }
}

TEST(CountingUcqTest, InclusionExclusionSubsetsAreInstrumented) {
  Database db = RandomBinaryDatabase(2, 60, 10, 3);
  Engine engine = MakeEngine(db, 1);
  auto out = engine.RunText("COUNT(x) := R0(x, y) or R1(x, y).");
  ASSERT_TRUE(out.ok()) << out.status();
  // Two disjuncts: subsets {1}, {2}, {1,2} = 3 evaluated (minus pruned).
  EXPECT_GT(engine.last_stats().ucq.ie_subsets, 0u);
  EXPECT_LE(engine.last_stats().ucq.ie_subsets, 3u);
}

TEST(CountingFirstOrderTest, NegationFallsBackToActiveDomain) {
  Database db = RandomBinaryDatabase(2, 40, 6, 11);
  // Vertices with an R0 edge but no R1 edge: genuinely non-positive.
  const char* count_text =
      "COUNT(x) := (exists y. R0(x, y)) and not (exists z. R1(x, z)).";
  const char* enum_text =
      "ans(x) := (exists y. R0(x, y)) and not (exists z. R1(x, z)).";
  Relation got = MakeEngine(db, 1).RunText(count_text).ValueOrDie();
  Relation rows = MakeEngine(db, 1).RunText(enum_text).ValueOrDie();
  ASSERT_EQ(got.arity(), 2u);
  ASSERT_EQ(got.size(), rows.size());  // every x appears once
  for (size_t r = 0; r < got.size(); ++r) EXPECT_EQ(got.At(r, 1), 1);
}

// ---------------------------------------------------------------------------
// Observability
// ---------------------------------------------------------------------------

TEST(CountingObservabilityTest, PlanRenderAndMetrics) {
  Database db = RandomBinaryDatabase(2, 30, 6, 2);
  Engine engine = MakeEngine(db, 1);
  auto plan = engine.PlanText("COUNT(x) :- R0(x, y), R1(y, z).");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE(plan.value().find("counting Yannakakis"), std::string::npos);
  EXPECT_NE(plan.value().find("Aggregate("), std::string::npos);
  EXPECT_NE(plan.value().find("SemijoinCount("), std::string::npos);
  EXPECT_NE(plan.value().find("#count"), std::string::npos);

  uint64_t before =
      engine.metrics().counter("pq_counting_queries_total").value();
  uint64_t groups_before =
      engine.metrics().histogram("pq_counting_groups").count();
  auto out = engine.RunText("COUNT(x) :- R0(x, y), R1(y, z).");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(engine.metrics().counter("pq_counting_queries_total").value(),
            before + 1);
  EXPECT_EQ(engine.metrics().histogram("pq_counting_groups").count(),
            groups_before + 1);

  // EXPLAIN ANALYZE annotates the counting nodes with actuals.
  auto analyzed = engine.AnalyzeText("COUNT(x) :- R0(x, y), R1(y, z).");
  ASSERT_TRUE(analyzed.ok()) << analyzed.status();
  EXPECT_NE(analyzed.value().find("Aggregate("), std::string::npos);
  EXPECT_NE(analyzed.value().find("actual="), std::string::npos);
}

}  // namespace
}  // namespace paraquery

// Compile-and-run check for the umbrella header: one include gives the
// whole public API.
#include "paraquery.hpp"

#include <gtest/gtest.h>

namespace paraquery {
namespace {

TEST(UmbrellaTest, EndToEndThroughSingleInclude) {
  Database db = GraphDatabase(CycleGraph(5));
  Engine engine(db);
  auto out = engine.RunText("ans(x, z) :- E(x, y), E(y, z), x != z.");
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out.value().empty());

  CqBuilder b;
  Term x = b.Var("x"), y = b.Var("y");
  auto q = b.Head({x}).Atom("E", {x, y}).Neq(x, y).Build().ValueOrDie();
  EXPECT_EQ(ClassifyConjunctive(q).engine, EngineChoice::kInequality);
}

}  // namespace
}  // namespace paraquery

// First-order equivalence laws, checked semantically on random databases:
// a torture suite for the active-domain evaluator. Every test evaluates two
// syntactically different but logically equivalent queries and demands
// identical answers.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.hpp"
#include "eval/fo.hpp"
#include "query/parser.hpp"
#include "workload/generators.hpp"

namespace paraquery {
namespace {

Database RandomDb(uint64_t seed) {
  Rng rng(seed);
  Database db;
  RelId a = db.AddRelation("A", 1).ValueOrDie();
  RelId r = db.AddRelation("R", 2).ValueOrDie();
  int n = 4 + static_cast<int>(rng.Below(4));
  for (int i = 0; i < n; ++i) {
    if (rng.Chance(0.6)) db.relation(a).Add({rng.Range(0, 5)});
    db.relation(r).Add({rng.Range(0, 5), rng.Range(0, 5)});
    db.relation(r).Add({rng.Range(0, 5), rng.Range(0, 5)});
  }
  // Guarantee a nonempty active domain.
  db.relation(a).Add({0});
  return db;
}

void ExpectEquivalent(const Database& db, const std::string& lhs,
                      const std::string& rhs) {
  auto lq = ParseFirstOrder(lhs).ValueOrDie();
  auto rq = ParseFirstOrder(rhs).ValueOrDie();
  auto lv = EvaluateFirstOrder(db, lq).ValueOrDie();
  auto rv = EvaluateFirstOrder(db, rq).ValueOrDie();
  EXPECT_TRUE(lv.EqualsAsSet(rv)) << lhs << "   vs   " << rhs;
}

class FoLawsTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  Database db_ = RandomDb(GetParam());
};

TEST_P(FoLawsTest, DoubleNegation) {
  ExpectEquivalent(db_, "ans(x) := not not A(x).", "ans(x) := A(x).");
}

TEST_P(FoLawsTest, DeMorganAnd) {
  ExpectEquivalent(db_,
                   "ans(x) := not (A(x) and R(x, x)).",
                   "ans(x) := not A(x) or not R(x, x).");
}

TEST_P(FoLawsTest, DeMorganOr) {
  ExpectEquivalent(db_,
                   "ans(x) := not (A(x) or R(x, x)).",
                   "ans(x) := not A(x) and not R(x, x).");
}

TEST_P(FoLawsTest, QuantifierDuality) {
  ExpectEquivalent(db_,
                   "ans(x) := forall y . R(x, y).",
                   "ans(x) := not (exists y . not R(x, y)).");
  ExpectEquivalent(db_,
                   "ans(x) := exists y . R(x, y).",
                   "ans(x) := not (forall y . not R(x, y)).");
}

TEST_P(FoLawsTest, ExistsDistributesOverOr) {
  ExpectEquivalent(db_,
                   "ans(x) := exists y . (R(x, y) or R(y, x)).",
                   "ans(x) := (exists y . R(x, y)) or (exists y . R(y, x)).");
}

TEST_P(FoLawsTest, ForallDistributesOverAnd) {
  ExpectEquivalent(
      db_,
      "ans(x) := forall y . (R(x, y) and R(y, y)).",
      "ans(x) := (forall y . R(x, y)) and (forall y . R(y, y)).");
}

TEST_P(FoLawsTest, ExistsCommute) {
  ExpectEquivalent(db_,
                   "p() := exists y . exists z . (R(y, z) and A(z)).",
                   "p() := exists z . exists y . (R(y, z) and A(z)).");
  ExpectEquivalent(db_,
                   "p() := exists y, z . (R(y, z) and A(z)).",
                   "p() := exists z . exists y . (R(y, z) and A(z)).");
}

TEST_P(FoLawsTest, ForallCommute) {
  ExpectEquivalent(db_,
                   "p() := forall y . forall z . (R(y, z) or R(z, y)).",
                   "p() := forall z . forall y . (R(y, z) or R(z, y)).");
}

TEST_P(FoLawsTest, PushExistsPastIndependentConjunct) {
  // A(x) does not mention y: ∃y (A(x) ∧ R(x,y)) == A(x) ∧ ∃y R(x,y).
  ExpectEquivalent(db_,
                   "ans(x) := exists y . (A(x) and R(x, y)).",
                   "ans(x) := A(x) and (exists y . R(x, y)).");
}

TEST_P(FoLawsTest, VacuousQuantifiers) {
  // Nonempty active domain: binding an unused variable changes nothing.
  ExpectEquivalent(db_, "ans(x) := exists y . A(x).", "ans(x) := A(x).");
  ExpectEquivalent(db_, "ans(x) := forall y . A(x).", "ans(x) := A(x).");
}

TEST_P(FoLawsTest, ShadowingInnerBinderWins) {
  // ∃x (A(x) ∧ ∃x R(x,x)): the inner ∃x is independent of the outer.
  ExpectEquivalent(db_,
                   "p() := exists x . (A(x) and exists x . R(x, x)).",
                   "p() := (exists x . A(x)) and (exists x . R(x, x)).");
}

TEST_P(FoLawsTest, ComparisonNegations) {
  ExpectEquivalent(db_, "ans(x) := A(x) and not (x = 3).",
                   "ans(x) := A(x) and x != 3.");
  ExpectEquivalent(db_, "ans(x) := A(x) and not (x < 3).",
                   "ans(x) := A(x) and (3 < x or x = 3).");
  ExpectEquivalent(db_, "ans(x) := A(x) and not (x <= 3).",
                   "ans(x) := A(x) and 3 < x.");
}

TEST_P(FoLawsTest, AbsorptionAndIdempotence) {
  ExpectEquivalent(db_, "ans(x) := A(x) and A(x).", "ans(x) := A(x).");
  ExpectEquivalent(db_, "ans(x) := A(x) or (A(x) and R(x, x)).",
                   "ans(x) := A(x).");
  ExpectEquivalent(db_, "ans(x) := A(x) and (A(x) or R(x, x)).",
                   "ans(x) := A(x).");
}

TEST_P(FoLawsTest, DistributivityAndOverOr) {
  ExpectEquivalent(
      db_,
      "ans(x) := A(x) and (R(x, x) or exists y . R(x, y)).",
      "ans(x) := (A(x) and R(x, x)) or (A(x) and exists y . R(x, y)).");
}

TEST_P(FoLawsTest, RelativizedForallEqualsSetInclusion) {
  // ∀y (¬R(x,y) ∨ A(y)): successors of x all in A — equals
  // ¬∃y (R(x,y) ∧ ¬A(y)).
  ExpectEquivalent(db_,
                   "ans(x) := forall y . (not R(x, y) or A(y)).",
                   "ans(x) := not (exists y . (R(x, y) and not A(y))).");
}

INSTANTIATE_TEST_SUITE_P(Seeds, FoLawsTest, ::testing::Range<uint64_t>(1, 16));

}  // namespace
}  // namespace paraquery

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "hypergraph/gyo.hpp"
#include "hypergraph/hypergraph.hpp"
#include "hypergraph/join_tree.hpp"

namespace paraquery {
namespace {

TEST(HypergraphTest, EdgesAreSortedAndDeduped) {
  Hypergraph h(5);
  int e = h.AddEdge({3, 1, 3, 2});
  EXPECT_EQ(h.edge(e), (std::vector<int>{1, 2, 3}));
}

TEST(HypergraphTest, CoOccurAndIntersect) {
  Hypergraph h(5);
  h.AddEdge({0, 1});
  h.AddEdge({1, 2});
  h.AddEdge({3, 4});
  EXPECT_TRUE(h.CoOccur(0, 1));
  EXPECT_FALSE(h.CoOccur(0, 2));
  EXPECT_TRUE(h.EdgesIntersect(0, 1));
  EXPECT_FALSE(h.EdgesIntersect(0, 2));
}

TEST(GyoTest, PathIsAcyclic) {
  Hypergraph h(4);
  h.AddEdge({0, 1});
  h.AddEdge({1, 2});
  h.AddEdge({2, 3});
  EXPECT_TRUE(IsAcyclic(h));
}

TEST(GyoTest, TriangleIsCyclic) {
  Hypergraph h(3);
  h.AddEdge({0, 1});
  h.AddEdge({1, 2});
  h.AddEdge({0, 2});
  EXPECT_FALSE(IsAcyclic(h));
}

TEST(GyoTest, TriangleCoveredByBigEdgeIsAcyclic) {
  // Adding a hyperedge covering the triangle restores acyclicity (the
  // standard alpha-acyclicity non-monotonicity example).
  Hypergraph h(3);
  h.AddEdge({0, 1});
  h.AddEdge({1, 2});
  h.AddEdge({0, 2});
  h.AddEdge({0, 1, 2});
  EXPECT_TRUE(IsAcyclic(h));
}

TEST(GyoTest, CycleIsCyclic) {
  Hypergraph h(5);
  for (int i = 0; i < 5; ++i) h.AddEdge({i, (i + 1) % 5});
  EXPECT_FALSE(IsAcyclic(h));
}

TEST(GyoTest, StarIsAcyclic) {
  Hypergraph h(6);
  for (int i = 1; i < 6; ++i) h.AddEdge({0, i});
  EXPECT_TRUE(IsAcyclic(h));
}

TEST(GyoTest, DuplicateEdgesAcyclic) {
  Hypergraph h(2);
  h.AddEdge({0, 1});
  h.AddEdge({0, 1});
  h.AddEdge({0, 1});
  EXPECT_TRUE(IsAcyclic(h));
}

TEST(GyoTest, DisconnectedAcyclic) {
  Hypergraph h(6);
  h.AddEdge({0, 1});
  h.AddEdge({2, 3});
  h.AddEdge({4, 5});
  EXPECT_TRUE(IsAcyclic(h));
}

TEST(GyoTest, PaperEmployeeProjectExample) {
  // G(e) :- EP(e,p), EP(e,p'), p != p'. The *relational* hypergraph
  // {e,p},{e,p'} is acyclic; adding the inequality edge {p,p'} (the naive
  // treatment the paper warns about) makes it cyclic.
  Hypergraph relational(3);  // e=0, p=1, p'=2
  relational.AddEdge({0, 1});
  relational.AddEdge({0, 2});
  EXPECT_TRUE(IsAcyclic(relational));

  Hypergraph with_ineq(3);
  with_ineq.AddEdge({0, 1});
  with_ineq.AddEdge({0, 2});
  with_ineq.AddEdge({1, 2});
  EXPECT_FALSE(IsAcyclic(with_ineq));
}

TEST(GyoTest, PaperStudentCourseExample) {
  // G(s) :- SD(s,d), SC(s,c), CD(c,d'), d != d'. Relational part acyclic;
  // inequality edge {d,d'} breaks it.
  Hypergraph relational(4);  // s=0, d=1, c=2, d'=3
  relational.AddEdge({0, 1});
  relational.AddEdge({0, 2});
  relational.AddEdge({2, 3});
  EXPECT_TRUE(IsAcyclic(relational));

  Hypergraph with_ineq(4);
  with_ineq.AddEdge({0, 1});
  with_ineq.AddEdge({0, 2});
  with_ineq.AddEdge({2, 3});
  with_ineq.AddEdge({1, 3});
  EXPECT_FALSE(IsAcyclic(with_ineq));
}

TEST(JoinTreeTest, PathJoinTree) {
  Hypergraph h(4);
  h.AddEdge({0, 1});
  h.AddEdge({1, 2});
  h.AddEdge({2, 3});
  auto tree = BuildJoinTree(h).ValueOrDie();
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_TRUE(VerifyJoinTree(h, tree));
  EXPECT_EQ(tree.bottom_up.size(), 3u);
  EXPECT_EQ(tree.bottom_up.back(), tree.root);
  EXPECT_EQ(tree.top_down.front(), tree.root);
}

TEST(JoinTreeTest, CyclicFails) {
  Hypergraph h(3);
  h.AddEdge({0, 1});
  h.AddEdge({1, 2});
  h.AddEdge({0, 2});
  auto tree = BuildJoinTree(h);
  EXPECT_EQ(tree.status().code(), StatusCode::kInvalidArgument);
}

TEST(JoinTreeTest, EmptyHypergraphFails) {
  Hypergraph h(3);
  EXPECT_FALSE(BuildJoinTree(h).ok());
}

TEST(JoinTreeTest, SingleEdge) {
  Hypergraph h(3);
  h.AddEdge({0, 1, 2});
  auto tree = BuildJoinTree(h).ValueOrDie();
  EXPECT_EQ(tree.root, 0);
  EXPECT_EQ(tree.parent[0], -1);
}

TEST(JoinTreeTest, DisconnectedComponentsAreLinked) {
  Hypergraph h(4);
  h.AddEdge({0, 1});
  h.AddEdge({2, 3});
  auto tree = BuildJoinTree(h).ValueOrDie();
  EXPECT_EQ(tree.size(), 2u);
  EXPECT_TRUE(VerifyJoinTree(h, tree));
  // One of the two must be the root and the other its child.
  int non_root = 1 - tree.root;
  EXPECT_EQ(tree.parent[non_root], tree.root);
}

TEST(JoinTreeTest, BottomUpOrderRespectsParents) {
  Hypergraph h(7);
  h.AddEdge({0, 1});
  h.AddEdge({1, 2});
  h.AddEdge({1, 3});
  h.AddEdge({3, 4});
  h.AddEdge({3, 5, 6});
  auto tree = BuildJoinTree(h).ValueOrDie();
  EXPECT_TRUE(VerifyJoinTree(h, tree));
  std::vector<int> position(tree.size());
  for (size_t i = 0; i < tree.bottom_up.size(); ++i) {
    position[tree.bottom_up[i]] = static_cast<int>(i);
  }
  for (size_t e = 0; e < tree.size(); ++e) {
    if (tree.parent[e] >= 0) {
      EXPECT_LT(position[e], position[tree.parent[e]])
          << "child must precede parent bottom-up";
    }
  }
}

// Random acyclic hypergraphs: generate a random tree of atoms that share
// variables along tree edges; GYO must accept and the join tree must verify.
class RandomAcyclicTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomAcyclicTest, GyoAcceptsAndJoinTreeVerifies) {
  Rng rng(GetParam());
  int num_atoms = 3 + static_cast<int>(rng.Below(10));
  // Variable budget: each atom gets a private variable plus the connector
  // shared with its tree parent.
  int num_vars = num_atoms * 3;
  Hypergraph h(num_vars);
  std::vector<std::vector<int>> atom_vars(num_atoms);
  int next_var = 0;
  for (int i = 0; i < num_atoms; ++i) {
    std::vector<int> vars;
    vars.push_back(next_var++);  // private variable
    if (i > 0) {
      int parent = static_cast<int>(rng.Below(static_cast<uint64_t>(i)));
      // Share a random variable of the parent.
      const auto& pv = atom_vars[parent];
      vars.push_back(pv[rng.Below(pv.size())]);
    }
    if (rng.Chance(0.5)) vars.push_back(next_var++);  // second private var
    atom_vars[i] = vars;
    h.AddEdge(vars);
  }
  EXPECT_TRUE(IsAcyclic(h));
  auto tree = BuildJoinTree(h).ValueOrDie();
  EXPECT_TRUE(VerifyJoinTree(h, tree));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAcyclicTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace paraquery

// Tests for the Theorem 2 engine: acyclic conjunctive queries with ≠.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "eval/inequality.hpp"
#include "eval/naive.hpp"
#include "graph/generators.hpp"
#include "query/ineq_formula.hpp"
#include "query/parser.hpp"

namespace paraquery {
namespace {

Database GraphDb(const Graph& g) {
  Database db;
  RelId e = db.AddRelation("E", 2).ValueOrDie();
  for (int u = 0; u < g.num_vertices(); ++u) {
    for (int v : g.Neighbors(u)) db.relation(e).Add({u, v});
  }
  return db;
}

IneqOptions Certified() {
  IneqOptions o;
  o.driver = IneqOptions::Driver::kCertified;
  return o;
}

TEST(IneqTest, PaperEmployeeProjectExample) {
  // G(e) :- EP(e,p), EP(e,p'), p != p' — employees on more than one project.
  Database db;
  RelId ep = db.AddRelation("EP", 2).ValueOrDie();
  db.relation(ep).Add({1, 100});
  db.relation(ep).Add({1, 101});
  db.relation(ep).Add({2, 100});
  db.relation(ep).Add({3, 102});
  db.relation(ep).Add({3, 102});  // duplicate row: still one project
  auto q = ParseConjunctive("g(e) :- EP(e, p), EP(e, q), p != q.")
               .ValueOrDie();
  IneqStats stats;
  auto out = IneqEvaluate(db, q, Certified(), &stats).ValueOrDie();
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains(std::vector<Value>{1}));
  EXPECT_TRUE(stats.certified);
  // p, q do not co-occur in one atom: the inequality is in I1, k = 2.
  EXPECT_EQ(stats.k, 2);
  EXPECT_EQ(stats.i1_atoms, 1u);
}

TEST(IneqTest, PaperStudentCourseExample) {
  // G(s) :- SD(s,d), SC(s,c), CD(c,d'), d != d' — students taking a course
  // outside their department.
  Database db;
  RelId sd = db.AddRelation("SD", 2).ValueOrDie();
  RelId sc = db.AddRelation("SC", 2).ValueOrDie();
  RelId cd = db.AddRelation("CD", 2).ValueOrDie();
  // Student 1 in dept 10 takes course 20 (dept 11): outside.
  // Student 2 in dept 11 takes course 21 (dept 11): inside.
  db.relation(sd).Add({1, 10});
  db.relation(sd).Add({2, 11});
  db.relation(sc).Add({1, 20});
  db.relation(sc).Add({2, 21});
  db.relation(cd).Add({20, 11});
  db.relation(cd).Add({21, 11});
  auto q = ParseConjunctive(
               "g(s) :- SD(s, d), SC(s, c), CD(c, e), d != e.")
               .ValueOrDie();
  auto out = IneqEvaluate(db, q, Certified()).ValueOrDie();
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains(std::vector<Value>{1}));
}

TEST(IneqTest, CoOccurringInequalityGoesToI2) {
  Database db = GraphDb(CycleGraph(4));
  auto q = ParseConjunctive("ans(x, y) :- E(x, y), x != y.").ValueOrDie();
  IneqStats stats;
  auto out = IneqEvaluate(db, q, Certified(), &stats).ValueOrDie();
  EXPECT_EQ(stats.k, 0);  // handled entirely by selections
  EXPECT_EQ(stats.i2_atoms, 1u);
  auto naive = NaiveEvaluateCq(db, q).ValueOrDie();
  EXPECT_TRUE(out.EqualsAsSet(naive));
}

TEST(IneqTest, VarConstInequalitiesPushed) {
  Database db = GraphDb(PathGraph(5));
  auto q = ParseConjunctive("ans(x) :- E(x, y), x != 0, y != 3.")
               .ValueOrDie();
  IneqStats stats;
  auto out = IneqEvaluate(db, q, Certified(), &stats).ValueOrDie();
  EXPECT_EQ(stats.k, 0);
  auto naive = NaiveEvaluateCq(db, q).ValueOrDie();
  EXPECT_TRUE(out.EqualsAsSet(naive));
}

TEST(IneqTest, PureAcyclicDegeneratesToYannakakis) {
  Database db = GraphDb(GnpRandom(10, 0.3, 7));
  auto q = ParseConjunctive("ans(a, c) :- E(a,b), E(b,c).").ValueOrDie();
  IneqStats stats;
  auto out = IneqEvaluate(db, q, Certified(), &stats).ValueOrDie();
  EXPECT_EQ(stats.k, 0);
  EXPECT_EQ(stats.family_size, 1u);
  auto naive = NaiveEvaluateCq(db, q).ValueOrDie();
  EXPECT_TRUE(out.EqualsAsSet(naive));
}

TEST(IneqTest, RejectsOrderComparisonsAndCyclicQueries) {
  Database db = GraphDb(PathGraph(3));
  auto lt = ParseConjunctive("p() :- E(x, y), x < y.").ValueOrDie();
  EXPECT_FALSE(IneqNonempty(db, lt).ok());
  auto cyc =
      ParseConjunctive("p() :- E(x,y), E(y,z), E(z,x), x != y.").ValueOrDie();
  EXPECT_FALSE(IneqNonempty(db, cyc).ok());
}

TEST(IneqTest, TriviallyFalseComparisons) {
  Database db = GraphDb(PathGraph(3));
  auto q = ParseConjunctive("p() :- E(x, y), x != x.").ValueOrDie();
  EXPECT_FALSE(IneqNonempty(db, q, Certified()).ValueOrDie());
  auto q2 = ParseConjunctive("p() :- E(x, y), 3 != 3.").ValueOrDie();
  EXPECT_FALSE(IneqNonempty(db, q2, Certified()).ValueOrDie());
  auto q3 = ParseConjunctive("p() :- E(x, y), 3 != 4.").ValueOrDie();
  EXPECT_TRUE(IneqNonempty(db, q3, Certified()).ValueOrDie());
}

TEST(IneqTest, SimplePathsOfLengthK) {
  // Simple paths via all-pairs ≠: the color-coding special case the paper
  // cites (Monien / Alon-Yuster-Zwick). Path graph has simple 3-paths;
  // star graph does not.
  const char* text =
      "p() :- E(a,b), E(b,c), E(c,d), a != b, a != c, a != d, b != c, "
      "b != d, c != d.";
  auto q = ParseConjunctive(text).ValueOrDie();

  Database path = GraphDb(PathGraph(5));
  EXPECT_TRUE(IneqNonempty(path, q, Certified()).ValueOrDie());

  Graph star(6);
  for (int i = 1; i < 6; ++i) star.AddEdge(0, i);
  Database stardb = GraphDb(star);
  EXPECT_FALSE(IneqNonempty(stardb, q, Certified()).ValueOrDie());
}

TEST(IneqTest, DisconnectedQueryComponentsWithCrossInequality) {
  // A(x), B(y), x != y across components of the query hypergraph.
  Database db;
  RelId a = db.AddRelation("A", 1).ValueOrDie();
  RelId b = db.AddRelation("B", 1).ValueOrDie();
  db.relation(a).Add({1});
  db.relation(b).Add({1});
  auto q = ParseConjunctive("p() :- A(x), B(y), x != y.").ValueOrDie();
  EXPECT_FALSE(IneqNonempty(db, q, Certified()).ValueOrDie());
  db.relation(b).Add({2});
  EXPECT_TRUE(IneqNonempty(db, q, Certified()).ValueOrDie());
  auto out = IneqEvaluate(db, q, Certified()).ValueOrDie();
  EXPECT_EQ(out.size(), 1u);
}

TEST(IneqTest, ContainsDecision) {
  Database db = GraphDb(PathGraph(4));
  auto q = ParseConjunctive("ans(x, z) :- E(x, y), E(y, z), x != z.")
               .ValueOrDie();
  EXPECT_TRUE(IneqContains(db, q, {0, 2}, Certified()).ValueOrDie());
  EXPECT_FALSE(IneqContains(db, q, {0, 0}, Certified()).ValueOrDie());
}

TEST(IneqTest, MonteCarloIsSoundAndUsuallyComplete) {
  // Monte Carlo: positives always sound; with c = 6 the failure rate is
  // ~e^-6, so these fixed seeds must find the witness.
  Database db = GraphDb(PathGraph(6));
  auto q = ParseConjunctive(
               "p() :- E(a,b), E(b,c), a != c, a != b, b != c.")
               .ValueOrDie();
  IneqOptions mc;
  mc.driver = IneqOptions::Driver::kMonteCarlo;
  mc.mc_error_exponent = 6.0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    mc.seed = seed;
    EXPECT_TRUE(IneqNonempty(db, q, mc).ValueOrDie()) << "seed=" << seed;
  }
}

TEST(IneqTest, StatsReportFamilyAndTrials) {
  Database db = GraphDb(PathGraph(6));
  auto q = ParseConjunctive("p() :- E(a,b), E(c,d), a != c.").ValueOrDie();
  IneqStats stats;
  ASSERT_TRUE(IneqNonempty(db, q, Certified(), &stats).ValueOrDie());
  EXPECT_EQ(stats.k, 2);
  EXPECT_GE(stats.family_size, 1u);
  EXPECT_GE(stats.trials, 1u);
  EXPECT_LE(stats.trials, stats.family_size);
}

// The main property: on random acyclic ≠-queries the certified engine
// matches naive backtracking exactly.
class IneqPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IneqPropertyTest, MatchesNaiveOnRandomAcyclicNeqQueries) {
  Rng rng(GetParam());
  Database db;
  const char* names[] = {"R0", "R1"};
  for (const char* name : names) {
    RelId id = db.AddRelation(name, 2).ValueOrDie();
    int rows = 8 + static_cast<int>(rng.Below(18));
    for (int i = 0; i < rows; ++i) {
      db.relation(id).Add({rng.Range(0, 6), rng.Range(0, 6)});
    }
  }
  // Random acyclic query as a random tree of binary atoms.
  ConjunctiveQuery q;
  int num_atoms = 2 + static_cast<int>(rng.Below(4));
  std::vector<VarId> pool = {q.vars.Intern("v0")};
  for (int i = 0; i < num_atoms; ++i) {
    VarId shared = pool[rng.Below(pool.size())];
    std::string fresh_name = std::string("v") + std::to_string(i + 1);
    VarId fresh = q.vars.Intern(fresh_name);
    Atom a{names[rng.Below(2)], {Term::Var(shared), Term::Var(fresh)}};
    if (rng.Chance(0.5)) std::swap(a.terms[0], a.terms[1]);
    q.body.push_back(a);
    pool.push_back(fresh);
  }
  // Random ≠ atoms over the variable pool (some co-occur -> I2, some not
  // -> I1), plus occasionally a var != const atom.
  int num_neq = 1 + static_cast<int>(rng.Below(4));
  for (int i = 0; i < num_neq; ++i) {
    VarId x = pool[rng.Below(pool.size())];
    if (rng.Chance(0.2)) {
      q.comparisons.push_back(
          {CompareOp::kNeq, Term::Var(x), Term::Const(rng.Range(0, 6))});
    } else {
      VarId y = pool[rng.Below(pool.size())];
      if (x == y) continue;
      q.comparisons.push_back({CompareOp::kNeq, Term::Var(x), Term::Var(y)});
    }
  }
  q.head = {Term::Var(pool[0]), Term::Var(pool[pool.size() / 2])};
  ASSERT_TRUE(q.IsAcyclic());

  IneqStats stats;
  auto fpt = IneqEvaluate(db, q, Certified(), &stats).ValueOrDie();
  auto naive = NaiveEvaluateCq(db, q).ValueOrDie();
  EXPECT_TRUE(fpt.EqualsAsSet(naive))
      << q.ToString() << "\nk=" << stats.k << " i1=" << stats.i1_atoms;
  EXPECT_EQ(IneqNonempty(db, q, Certified()).ValueOrDie(), !naive.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, IneqPropertyTest,
                         ::testing::Range<uint64_t>(1, 61));

// ---------------------------------------------------------------------------
// Plan lowering vs the recorded oracle: the historical hand-rolled
// per-coloring relational-algebra code (the *Oracle entry points) was
// deleted after soaking; before its removal, its answers over this exact
// generator family were recorded into tests/theorem2_recorded.inc (arity,
// row count, FNV-1a hash of the sorted+deduped row bytes, and the
// nonemptiness decision). Same options + same seed = same coloring family,
// so the lowered path must keep reproducing every recorded entry
// byte-for-byte.
// ---------------------------------------------------------------------------

// Mirrors the layout of the entries in tests/theorem2_recorded.inc.
struct RecordedIneqAnswer {
  uint64_t seed;
  int driver;  // 0 = kCertified, 1 = kMonteCarlo
  size_t arity;
  size_t rows;
  uint64_t hash;
  bool nonempty;
};

#include "theorem2_recorded.inc"

// FNV-1a over the 8 LE bytes of arity, size, then every value — the exact
// procedure the fixture generator used.
uint64_t FnvRelation(const Relation& r) {
  uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  mix(static_cast<uint64_t>(r.arity()));
  mix(static_cast<uint64_t>(r.size()));
  for (Value v : r.data()) mix(static_cast<uint64_t>(v));
  return h;
}

void ExpectMatchesRecorded(const Relation& out, const RecordedIneqAnswer& rec,
                           const std::string& context) {
  ASSERT_EQ(out.arity(), rec.arity) << context;
  ASSERT_EQ(out.size(), rec.rows) << context;
  EXPECT_EQ(FnvRelation(out), rec.hash) << context;
}

const RecordedIneqAnswer& FindRecorded(uint64_t seed, int driver) {
  for (const RecordedIneqAnswer& rec : kRecordedIneqAnswers) {
    if (rec.seed == seed && rec.driver == driver) return rec;
  }
  ADD_FAILURE() << "no recorded answer for seed " << seed;
  static RecordedIneqAnswer missing{};
  return missing;
}

class IneqLoweringDifferentialTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IneqLoweringDifferentialTest, PlanMatchesRecordedOracleByteForByte) {
  Rng rng(GetParam() * 7919 + 13);
  Database db;
  const char* names[] = {"R0", "R1"};
  for (const char* name : names) {
    RelId id = db.AddRelation(name, 2).ValueOrDie();
    int rows = 8 + static_cast<int>(rng.Below(20));
    for (int i = 0; i < rows; ++i) {
      db.relation(id).Add({rng.Range(0, 6), rng.Range(0, 6)});
    }
  }
  // Random acyclic tree query with a random mix of I1/I2/var-const ≠ atoms
  // (same generator family as the MatchesNaive suite).
  ConjunctiveQuery q;
  int num_atoms = 2 + static_cast<int>(rng.Below(4));
  std::vector<VarId> pool = {q.vars.Intern("v0")};
  for (int i = 0; i < num_atoms; ++i) {
    VarId shared = pool[rng.Below(pool.size())];
    VarId fresh = q.vars.Intern(std::string("v") + std::to_string(i + 1));
    Atom a{names[rng.Below(2)], {Term::Var(shared), Term::Var(fresh)}};
    if (rng.Chance(0.5)) std::swap(a.terms[0], a.terms[1]);
    q.body.push_back(a);
    pool.push_back(fresh);
  }
  int num_neq = 1 + static_cast<int>(rng.Below(4));
  for (int i = 0; i < num_neq; ++i) {
    VarId x = pool[rng.Below(pool.size())];
    if (rng.Chance(0.2)) {
      q.comparisons.push_back(
          {CompareOp::kNeq, Term::Var(x), Term::Const(rng.Range(0, 6))});
    } else {
      VarId y = pool[rng.Below(pool.size())];
      if (x == y) continue;
      q.comparisons.push_back({CompareOp::kNeq, Term::Var(x), Term::Var(y)});
    }
  }
  q.head = {Term::Var(pool[0]), Term::Var(pool[pool.size() / 2])};
  ASSERT_TRUE(q.IsAcyclic());

  for (auto driver :
       {IneqOptions::Driver::kCertified, IneqOptions::Driver::kMonteCarlo}) {
    IneqOptions options;
    options.driver = driver;
    options.mc_error_exponent = 2.0;
    options.seed = GetParam();
    const RecordedIneqAnswer& rec = FindRecorded(
        GetParam(), driver == IneqOptions::Driver::kCertified ? 0 : 1);
    auto planned = IneqEvaluate(db, q, options);
    ASSERT_TRUE(planned.ok()) << planned.status();
    ExpectMatchesRecorded(planned.value(), rec, q.ToString());
    EXPECT_EQ(IneqNonempty(db, q, options).ValueOrDie(), rec.nonempty);
    // A warm plan cache must not change a single byte either.
    PlanCache cache;
    options.plan_cache = &cache;
    for (int round = 0; round < 2; ++round) {
      auto cached = IneqEvaluate(db, q, options);
      ASSERT_TRUE(cached.ok()) << cached.status();
      ExpectMatchesRecorded(cached.value(), rec, q.ToString() + " (cached)");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IneqLoweringDifferentialTest,
                         ::testing::Range<uint64_t>(1, 41));

TEST(IneqTest, FormulaModePlanMatchesRecordedOracle) {
  Rng rng(4242);
  Database db;
  RelId r = db.AddRelation("R", 2).ValueOrDie();
  for (int i = 0; i < 40; ++i) {
    db.relation(r).Add({rng.Range(0, 5), rng.Range(0, 5)});
  }
  // Acyclic chain body, ∧/∨ formula over its variables + one constant.
  auto q = ParseConjunctive("ans(a, c) :- R(a, b), R(b, c), R(c, d).")
               .ValueOrDie();
  IneqFormula phi;
  int ab = phi.AddAtom({CompareOp::kNeq, Term::Var(0), Term::Var(1)});
  int cd = phi.AddAtom({CompareOp::kNeq, Term::Var(2), Term::Var(3)});
  int ac3 = phi.AddAtom({CompareOp::kNeq, Term::Var(0), Term::Const(3)});
  phi.root = phi.AddAnd({phi.AddOr({ab, cd}), phi.AddOr({cd, ac3})});
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    IneqOptions options;
    options.seed = seed;
    const RecordedIneqAnswer& rec = kRecordedFormulaAnswers[seed - 1];
    ASSERT_EQ(rec.seed, seed);
    auto planned = IneqFormulaEvaluate(db, q, phi, options);
    ASSERT_TRUE(planned.ok()) << planned.status();
    ExpectMatchesRecorded(planned.value(), rec, "formula mode");
    EXPECT_EQ(IneqFormulaNonempty(db, q, phi, options).ValueOrDie(),
              rec.nonempty);
    // Cached formula compilation: same bytes again.
    PlanCache cache;
    options.plan_cache = &cache;
    auto cached = IneqFormulaEvaluate(db, q, phi, options);
    ASSERT_TRUE(cached.ok()) << cached.status();
    ExpectMatchesRecorded(cached.value(), rec, "formula cached");
  }
}

TEST(IneqTest, LoweredPathReportsPlanStats) {
  Database db = GraphDb(GnpRandom(20, 0.3, 3));
  auto q = ParseConjunctive("ans(a) :- E(a, b), E(b, c), a != c.")
               .ValueOrDie();
  IneqStats stats;
  PlanStats plan;
  auto out = IneqEvaluate(db, q, Certified(), &stats, &plan).ValueOrDie();
  EXPECT_GT(plan.joins + plan.semijoins, 0u);  // went through the executor
  EXPECT_GT(plan.scans, 0u);
  auto naive = NaiveEvaluateCq(db, q).ValueOrDie();
  EXPECT_TRUE(out.EqualsAsSet(naive));
}

TEST(IneqTest, LoweredPathHonorsResourceLimits) {
  // A tight per-operator row cap must abort the plan execution, exactly as
  // the engine-level unified limits promise.
  Database db = GraphDb(CompleteGraph(14));
  auto q = ParseConjunctive(
               "ans(a, d) :- E(a, b), E(b, c), E(c, d), a != d.")
               .ValueOrDie();
  IneqOptions options;
  options.limits.max_rows = 10;
  EXPECT_EQ(IneqEvaluate(db, q, options).status().code(),
            StatusCode::kResourceExhausted);
  options.limits.max_rows = 0;
  options.limits.max_steps = 20;
  EXPECT_EQ(IneqEvaluate(db, q, options).status().code(),
            StatusCode::kResourceExhausted);
  options.limits.max_steps = 0;
  EXPECT_TRUE(IneqEvaluate(db, q, options).ok());
}

TEST(IneqTest, PlanTextRendersLoweredDag) {
  Database db = GraphDb(PathGraph(5));
  auto q = ParseConjunctive("g(e) :- E(e, p), E(e, q), p != q.").ValueOrDie();
  std::string text = IneqPlanText(db, q).ValueOrDie();
  EXPECT_NE(text.find("Theorem 2 color coding"), std::string::npos);
  EXPECT_NE(text.find("HashJoin"), std::string::npos);
  EXPECT_NE(text.find("p'"), std::string::npos);  // primed hash column
  EXPECT_NE(text.find("!="), std::string::npos);  // the I1 select
}

// Deeper trees with several I1 inequalities crossing subtrees.
TEST(IneqTest, DeepTreeCrossSubtreeInequalities) {
  Rng rng(99);
  Database db;
  RelId r = db.AddRelation("R", 2).ValueOrDie();
  for (int i = 0; i < 60; ++i) {
    db.relation(r).Add({rng.Range(0, 9), rng.Range(0, 9)});
  }
  // Star of paths: center v0 with three 2-edge arms; inequalities between
  // the arm tips (never co-occurring).
  auto q = ParseConjunctive(
               "ans(c) :- R(c, a1), R(a1, a2), R(c, b1), R(b1, b2), "
               "R(c, d1), R(d1, d2), a2 != b2, b2 != d2, a2 != d2.")
               .ValueOrDie();
  ASSERT_TRUE(q.IsAcyclic());
  IneqStats stats;
  auto fpt = IneqEvaluate(db, q, Certified(), &stats).ValueOrDie();
  EXPECT_EQ(stats.k, 3);
  auto naive = NaiveEvaluateCq(db, q).ValueOrDie();
  EXPECT_TRUE(fpt.EqualsAsSet(naive));
}

}  // namespace
}  // namespace paraquery

// Columnar storage + vectorized execution: ColumnBlock/ColumnarTable units
// (COW, view sharing, memory accounting), the selection-vector kernels, the
// parallel index-build/dedup equivalences, and the randomized row-vs-
// columnar differential across every plan-routed engine at widths 1 and 4.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/fault_injection.hpp"
#include "common/query_context.hpp"
#include "common/rng.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "query/parser.hpp"
#include "relational/column_block.hpp"
#include "relational/predicate.hpp"
#include "relational/relation.hpp"
#include "relational/row_index.hpp"
#include "relational/vectorized.hpp"
#include "runtime/scheduler.hpp"
#include "workload/generators.hpp"

namespace paraquery {
namespace {

Relation RandomRelation(Rng& rng, size_t arity, size_t rows, Value domain) {
  Relation rel(arity);
  std::vector<Value> row(arity);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < arity; ++c) row[c] = rng.Range(0, domain);
    rel.Add(row);
  }
  return rel;
}

// ---------------------------------------------------------------------------
// ColumnarTable: transpose correctness, per-block caching, COW semantics.
// ---------------------------------------------------------------------------

TEST(ColumnarTableTest, TransposeMatchesRowMajor) {
  Rng rng(7);
  Relation rel = RandomRelation(rng, 3, 257, 50);
  auto table = rel.ColumnarView();
  ASSERT_NE(table, nullptr);
  ASSERT_EQ(table->rows(), rel.size());
  ASSERT_EQ(table->arity(), rel.arity());
  for (size_t c = 0; c < rel.arity(); ++c) {
    const Value* col = table->col(c);
    for (size_t r = 0; r < rel.size(); ++r) {
      ASSERT_EQ(col[r], rel.At(r, c)) << "r=" << r << " c=" << c;
    }
  }
}

TEST(ColumnarTableTest, MirrorIsCachedOnTheSharedBlock) {
  Rng rng(8);
  Relation rel = RandomRelation(rng, 2, 64, 10);
  auto first = rel.ColumnarView();
  ASSERT_NE(first, nullptr);
  // Same relation: cached, same object.
  EXPECT_EQ(rel.ColumnarView().get(), first.get());
  // A storage-sharing view (plain copy before any mutation) shares the
  // mirror, exactly like the distinct-count stats.
  Relation alias = rel;
  EXPECT_EQ(alias.ColumnarView().get(), first.get());
}

TEST(ColumnarTableTest, MutationInvalidatesAndCowCloneStartsFresh) {
  Rng rng(9);
  Relation rel = RandomRelation(rng, 2, 32, 10);
  auto before = rel.ColumnarView();
  ASSERT_NE(before, nullptr);
  // COW: mutating a copy detaches it; the original keeps its mirror.
  Relation clone = rel;
  clone.Add({1, 2});
  auto clone_view = clone.ColumnarView();
  ASSERT_NE(clone_view, nullptr);
  EXPECT_NE(clone_view.get(), before.get());
  EXPECT_EQ(clone_view->rows(), rel.size() + 1);
  EXPECT_EQ(rel.ColumnarView().get(), before.get());
  // In-place mutation of the original drops its cache.
  rel.Add({3, 4});
  auto after = rel.ColumnarView();
  ASSERT_NE(after, nullptr);
  EXPECT_NE(after.get(), before.get());
  EXPECT_EQ(after->rows(), before->rows() + 1);
}

TEST(ColumnarTableTest, ParallelTransposeIsByteIdentical) {
  Rng rng(10);
  Relation rel = RandomRelation(rng, 4, 10'000, 1000);
  auto seq = Relation(rel).ColumnarView();
  TaskScheduler scheduler(4);
  ParallelForFn pfor = MakeParallelFor(&scheduler);
  ASSERT_TRUE(static_cast<bool>(pfor));
  Relation copy = rel;
  copy.Add({0, 0, 0, 0});  // detach so the parallel build runs fresh
  Relation base = rel;
  auto par = base.ColumnarView(pfor);
  ASSERT_NE(par, nullptr);
  ASSERT_EQ(par->rows(), seq->rows());
  for (size_t c = 0; c < rel.arity(); ++c) {
    for (size_t r = 0; r < rel.size(); ++r) {
      ASSERT_EQ(par->col(c)[r], seq->col(c)[r]);
    }
  }
}

TEST(ColumnarTableTest, FromColumnsSharesBlocksZeroCopy) {
  Rng rng(11);
  Relation rel = RandomRelation(rng, 3, 100, 20);
  auto table = rel.ColumnarView();
  ASSERT_NE(table, nullptr);
  // A column-subset "projection": wrap two of the three blocks.
  auto projected = ColumnarTable::FromColumns(
      {table->col_block(2), table->col_block(0)}, table->rows());
  ASSERT_EQ(projected->arity(), 2u);
  ASSERT_EQ(projected->rows(), table->rows());
  EXPECT_TRUE(projected->SharesColumnWith(0, *table, 2));
  EXPECT_TRUE(projected->SharesColumnWith(1, *table, 0));
  EXPECT_EQ(projected->col(0), table->col(2));  // same buffer, no copy
}

TEST(ColumnBlockTest, ChargesAndReleasesTheThreadAccountant) {
  auto accountant = std::make_shared<MemoryAccountant>();
  ScopedMemoryAccounting scope(accountant);
  uint64_t before = accountant->used();
  {
    std::vector<Value> values(1000, 7);
    ColumnBlock block(std::move(values));
    EXPECT_GE(accountant->used(), before + 1000 * sizeof(Value));
  }
  EXPECT_EQ(accountant->used(), before);
}

TEST(ColumnBlockTest, ColumnarViewChargesTheQueryBudget) {
  Rng rng(12);
  Relation rel = RandomRelation(rng, 2, 2000, 100);
  auto accountant = std::make_shared<MemoryAccountant>();
  uint64_t baseline = accountant->used();
  std::shared_ptr<const ColumnarTable> view;
  {
    ScopedMemoryAccounting scope(accountant);
    view = rel.ColumnarView();
  }
  ASSERT_NE(view, nullptr);
  // The mirror's two columns were charged to the installed accountant.
  EXPECT_GE(accountant->used(), baseline + 2 * 2000 * sizeof(Value));
}

// ---------------------------------------------------------------------------
// Selection-vector kernels.
// ---------------------------------------------------------------------------

TEST(VecKernelTest, FilterRangeKeepsAscendingPositions) {
  Rng rng(13);
  Relation rel = RandomRelation(rng, 2, 500, 10);
  auto table = rel.ColumnarView();
  const Value* cols[] = {table->col(0), table->col(1)};
  std::vector<Constraint> preds = {Constraint::LtConst(0, 5),
                                   Constraint::NeqCols(0, 1)};
  std::vector<vec::SelIdx> sel;
  vec::FilterRange(preds, cols, 0, rel.size(), sel);
  size_t expect = 0;
  for (size_t r = 0; r < rel.size(); ++r) {
    if (rel.At(r, 0) < 5 && rel.At(r, 0) != rel.At(r, 1)) {
      ASSERT_LT(expect, sel.size());
      EXPECT_EQ(sel[expect], r);
      ++expect;
    }
  }
  EXPECT_EQ(sel.size(), expect);
}

TEST(VecKernelTest, FilterSelCompactsInPlacePreservingOrder) {
  Rng rng(14);
  Relation rel = RandomRelation(rng, 1, 300, 4);
  auto table = rel.ColumnarView();
  const Value* cols[] = {table->col(0)};
  // Every third position, then refine by a constraint.
  std::vector<vec::SelIdx> sel;
  for (size_t r = 0; r < rel.size(); r += 3) sel.push_back(r);
  std::vector<vec::SelIdx> expected;
  for (vec::SelIdx r : sel) {
    if (rel.At(r, 0) == 2) expected.push_back(r);
  }
  size_t n = vec::FilterSel(Constraint::EqConst(0, 2), cols, sel.data(),
                            sel.size());
  ASSERT_EQ(n, expected.size());
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(sel[i], expected[i]);
}

// ---------------------------------------------------------------------------
// Parallel build equivalences: RowIndex and HashDedup are pure functions of
// the input rows — never of the execution width.
// ---------------------------------------------------------------------------

TEST(ParallelEquivalenceTest, RowIndexIdenticalAtAnyWidth) {
  Rng rng(15);
  Relation build = RandomRelation(rng, 2, 40'000, 500);
  Relation probe = RandomRelation(rng, 2, 1'000, 500);
  RowIndex seq(build, {0});
  TaskScheduler scheduler(4);
  RowIndex par(build, {0}, MakeParallelFor(&scheduler));
  ASSERT_EQ(par.distinct_keys(), seq.distinct_keys());
  for (size_t r = 0; r < probe.size(); ++r) {
    uint32_t a = seq.Find(probe, r, std::vector<int>{0});
    uint32_t b = par.Find(probe, r, std::vector<int>{0});
    ASSERT_EQ(a, b) << "probe row " << r;
    for (; a != RowIndex::kNone; a = seq.Next(a), b = par.Next(b)) {
      ASSERT_EQ(a, b);
      ASSERT_EQ(seq.MatchCount(a), par.MatchCount(b));
    }
    ASSERT_EQ(b, RowIndex::kNone);
  }
}

TEST(ParallelEquivalenceTest, HashDedupIdenticalAtAnyWidth) {
  Rng rng(16);
  // Heavy duplication so the dedup actually removes rows.
  Relation rel = RandomRelation(rng, 2, 50'000, 60);
  Relation seq = rel;
  Relation par = rel;
  seq.HashDedup();
  TaskScheduler scheduler(4);
  par.HashDedup(MakeParallelFor(&scheduler));
  ASSERT_EQ(par.size(), seq.size());
  EXPECT_TRUE(par.data() == seq.data());
}

// ---------------------------------------------------------------------------
// End-to-end differential: with vectorize toggled, every plan-routed engine
// must produce byte-identical answers at widths 1 and 4, on inputs both
// above and below the vectorization threshold (kVecMinSourceRows).
// ---------------------------------------------------------------------------

struct EngineWorkload {
  const char* label;
  const char* text;
};

constexpr EngineWorkload kWorkloads[] = {
    {"cyclic_triangle", "ans(x) :- E(x, y), E(y, z), E(z, x)."},
    {"cyclic_ineq", "ans(x, z) :- E(x, y), E(y, z), x != z."},
    {"ucq", "ans(x) := exists y . (E(x, y) or E(y, x))."},
    {"datalog", "tc(x, y) :- E(x, y).\ntc(x, y) :- E(x, z), tc(z, y).\n"},
};

TEST(RowVsColumnarDifferentialTest, ByteIdenticalAcrossEnginesAndWidths) {
  for (uint64_t seed : {3u, 11u, 29u}) {
    // ~n*4 directed edges: well above the 256-row vectorization floor.
    Database big = GraphDatabase(GnpRandom(120, 4.0 / 120, seed));
    // Below the floor: exercises the row fallback under a Materialize root.
    Database small = GraphDatabase(GnpRandom(12, 0.3, seed));
    for (Database* db : {&big, &small}) {
      for (size_t threads : {size_t{1}, size_t{4}}) {
        EngineOptions row_options;
        row_options.threads = threads;
        row_options.vectorize = false;
        Engine row_engine(*db, row_options);
        EngineOptions vec_options = row_options;
        vec_options.vectorize = true;
        Engine vec_engine(*db, vec_options);
        for (const EngineWorkload& w : kWorkloads) {
          SCOPED_TRACE(std::string(w.label) + " threads=" +
                       std::to_string(threads) + " seed=" +
                       std::to_string(seed) +
                       (db == &big ? " big" : " small"));
          auto row = row_engine.RunText(w.text);
          auto vec = vec_engine.RunText(w.text);
          ASSERT_TRUE(row.ok()) << row.status();
          ASSERT_TRUE(vec.ok()) << vec.status();
          ASSERT_EQ(vec.value().arity(), row.value().arity());
          ASSERT_EQ(vec.value().size(), row.value().size());
          EXPECT_TRUE(vec.value().data() == row.value().data());
        }
      }
    }
  }
}

TEST(RowVsColumnarDifferentialTest, VectorizedPathActuallyRuns) {
  // Sanity for the suite above: on the big input the vectorized engine must
  // report batches, and the row engine must not.
  Database db = GraphDatabase(GnpRandom(200, 4.0 / 200, 5));
  ASSERT_GE(db.relation(0).size(), 256u);
  auto q = ParseConjunctive("ans(x) :- E(x, y), E(y, z), E(z, x).")
               .ValueOrDie();
  // The cyclic triangle routes to the multiway-join plan by default, which
  // has no Materialize boundary; force the binary chain this test is about.
  EngineOptions vec_options;
  vec_options.wcoj = false;
  Engine vec_engine(db, vec_options);
  ASSERT_TRUE(vec_engine.Run(q).ok());
  EXPECT_GT(vec_engine.last_stats().plan.vec_batches, 0u);
  EngineOptions row_options;
  row_options.vectorize = false;
  row_options.wcoj = false;
  Engine row_engine(db, row_options);
  ASSERT_TRUE(row_engine.Run(q).ok());
  EXPECT_EQ(row_engine.last_stats().plan.vec_batches, 0u);
}

TEST(RowVsColumnarDifferentialTest, RandomCqsByteIdentical) {
  // Random left-deep-friendly CQs over two relations (the vec-eligible
  // shape plus ineligible variants with comparisons), row vs columnar.
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed * 131 + 7);
    Database db;
    const char* names[] = {"R0", "R1"};
    for (const char* name : names) {
      RelId id = db.AddRelation(name, 2).ValueOrDie();
      int rows = 300 + static_cast<int>(rng.Below(300));
      for (int i = 0; i < rows; ++i) {
        db.relation(id).Add({rng.Range(0, 40), rng.Range(0, 40)});
      }
    }
    ConjunctiveQuery q;
    int num_atoms = 2 + static_cast<int>(rng.Below(3));
    std::vector<VarId> pool = {q.vars.Intern("v0")};
    for (int i = 0; i < num_atoms; ++i) {
      VarId shared = pool[rng.Below(pool.size())];
      VarId fresh = q.vars.Intern(std::string("v") + std::to_string(i + 1));
      Atom a{names[rng.Below(2)], {Term::Var(shared), Term::Var(fresh)}};
      if (rng.Chance(0.5)) std::swap(a.terms[0], a.terms[1]);
      q.body.push_back(a);
      pool.push_back(fresh);
    }
    if (rng.Chance(0.5)) {
      // Comparisons route through Select nodes; keep them var-vs-const half
      // the time so both vec::Filter kinds appear.
      VarId x = pool[rng.Below(pool.size())];
      VarId y = pool[rng.Below(pool.size())];
      if (x != y && rng.Chance(0.5)) {
        q.comparisons.push_back({CompareOp::kNeq, Term::Var(x), Term::Var(y)});
      } else {
        q.comparisons.push_back(
            {CompareOp::kLt, Term::Var(x), Term::Const(rng.Range(5, 35))});
      }
    }
    q.head = {Term::Var(pool[0]), Term::Var(pool[pool.size() / 2])};
    SCOPED_TRACE("seed=" + std::to_string(seed) + " q=" + q.ToString());
    for (size_t threads : {size_t{1}, size_t{4}}) {
      EngineOptions row_options;
      row_options.threads = threads;
      row_options.vectorize = false;
      EngineOptions vec_options = row_options;
      vec_options.vectorize = true;
      auto row = Engine(db, row_options).Run(q);
      auto vec = Engine(db, vec_options).Run(q);
      ASSERT_TRUE(row.ok()) << row.status();
      ASSERT_TRUE(vec.ok()) << vec.status();
      ASSERT_EQ(vec.value().size(), row.value().size());
      EXPECT_TRUE(vec.value().data() == row.value().data());
    }
  }
}

// ---------------------------------------------------------------------------
// Fault injection at the vectorization boundary.
// ---------------------------------------------------------------------------

TEST(ColumnarFaultTest, MaterializeProbeFailsCleanlyAndRecovers) {
  Database db = GraphDatabase(GnpRandom(150, 4.0 / 150, 5));
  // Force the binary vectorized route: the default multiway-join plan for
  // the cyclic triangle never reaches the Materialize fault point.
  EngineOptions options;
  options.wcoj = false;
  Engine engine(db, options);
  const char* text = "ans(x) :- E(x, y), E(y, z), E(z, x).";
  auto baseline = engine.RunText(text).ValueOrDie();
  // The probe sits at the top of the executor's Materialize case; arming it
  // must surface as a clean Status, and the engine must fully recover.
  FaultInjector::ArmPoint("executor.vec.materialize", 1);
  auto failed = engine.RunText(text);
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.status().message().find("executor.vec.materialize"),
            std::string::npos);
  EXPECT_TRUE(FaultInjector::fired());
  FaultInjector::Disarm();
  auto recovered = engine.RunText(text);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered.value().EqualsAsSet(baseline));
}

}  // namespace
}  // namespace paraquery

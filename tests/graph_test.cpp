#include <gtest/gtest.h>

#include "graph/clique.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/hamiltonian.hpp"
#include "graph/scc.hpp"

namespace paraquery {
namespace {

TEST(GraphTest, AddEdgeBasics) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(1, 2);  // duplicate ignored
  g.AddEdge(3, 3);  // self-loop ignored
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_EQ(g.Degree(1), 2);
}

TEST(GraphTest, LargeVertexIdsCrossWordBoundary) {
  Graph g(130);
  g.AddEdge(0, 129);
  g.AddEdge(63, 64);
  EXPECT_TRUE(g.HasEdge(129, 0));
  EXPECT_TRUE(g.HasEdge(64, 63));
  EXPECT_FALSE(g.HasEdge(128, 1));
}

TEST(GraphTest, ComplementInverts) {
  Graph g(4);
  g.AddEdge(0, 1);
  Graph c = g.Complement();
  EXPECT_FALSE(c.HasEdge(0, 1));
  EXPECT_TRUE(c.HasEdge(0, 2));
  EXPECT_EQ(c.num_edges(), 5u);  // C(4,2) - 1
}

TEST(GraphTest, IsCliqueChecksAllPairsAndDistinctness) {
  Graph g = CompleteGraph(4);
  EXPECT_TRUE(g.IsClique({0, 1, 2, 3}));
  EXPECT_FALSE(g.IsClique({0, 0, 1}));
  Graph h = PathGraph(3);
  EXPECT_TRUE(h.IsClique({0, 1}));
  EXPECT_FALSE(h.IsClique({0, 1, 2}));
}

TEST(CliqueTest, FindsPlantedClique) {
  Graph g = PlantedClique(40, 0.2, 5, /*seed=*/11);
  auto naive = FindCliqueNaive(g, 5);
  ASSERT_TRUE(naive.has_value());
  EXPECT_TRUE(g.IsClique(*naive));
  auto bb = FindCliqueBb(g, 5);
  ASSERT_TRUE(bb.has_value());
  EXPECT_TRUE(g.IsClique(*bb));
}

TEST(CliqueTest, TuranGraphHasNoLargerClique) {
  // Complete 3-partite with classes of 4: max clique is exactly 3.
  Graph g = TuranGraph(3, 4);
  EXPECT_TRUE(FindCliqueBb(g, 3).has_value());
  EXPECT_FALSE(FindCliqueBb(g, 4).has_value());
  EXPECT_FALSE(FindCliqueNaive(g, 4).has_value());
  EXPECT_EQ(MaxCliqueSize(g), 3);
}

TEST(CliqueTest, EdgeCases) {
  Graph g(3);
  EXPECT_TRUE(FindCliqueNaive(g, 0).has_value());
  EXPECT_TRUE(FindCliqueNaive(g, 1).has_value());
  EXPECT_FALSE(FindCliqueNaive(g, 2).has_value());
  EXPECT_FALSE(FindCliqueNaive(g, 5).has_value());
  EXPECT_EQ(MaxCliqueSize(g), 1);
  Graph empty(0);
  EXPECT_EQ(MaxCliqueSize(empty), 0);
}

TEST(CliqueTest, CountCliques) {
  Graph g = CompleteGraph(5);
  EXPECT_EQ(CountCliques(g, 3), 10u);  // C(5,3)
  EXPECT_EQ(CountCliques(g, 5), 1u);
  EXPECT_EQ(CountCliques(g, 3, /*cap=*/4), 4u);
  Graph cycle = CycleGraph(5);
  EXPECT_EQ(CountCliques(cycle, 3), 0u);
  EXPECT_EQ(CountCliques(cycle, 2), 5u);
}

// Naive and branch-and-bound agree on random graphs across densities.
class CliqueAgreementTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(CliqueAgreementTest, SolversAgree) {
  auto [seed, p] = GetParam();
  Graph g = GnpRandom(25, p, seed);
  for (int k = 2; k <= 6; ++k) {
    bool naive = FindCliqueNaive(g, k).has_value();
    bool bb = FindCliqueBb(g, k).has_value();
    EXPECT_EQ(naive, bb) << "k=" << k << " seed=" << seed << " p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CliqueAgreementTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(0.2, 0.5, 0.8)));

TEST(HamiltonianTest, PathGraphHasPath) {
  auto path = FindHamiltonianPath(PathGraph(6));
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 6u);
}

TEST(HamiltonianTest, WitnessIsValidPath) {
  Graph g = GnpRandom(10, 0.5, 3);
  auto path = FindHamiltonianPath(g);
  if (path.has_value()) {
    EXPECT_EQ(path->size(), 10u);
    std::vector<bool> seen(10, false);
    for (size_t i = 0; i < path->size(); ++i) {
      EXPECT_FALSE(seen[(*path)[i]]);
      seen[(*path)[i]] = true;
      if (i > 0) {
        EXPECT_TRUE(g.HasEdge((*path)[i - 1], (*path)[i]));
      }
    }
  }
}

TEST(HamiltonianTest, StarHasNoPath) {
  Graph g(5);
  for (int i = 1; i < 5; ++i) g.AddEdge(0, i);
  EXPECT_FALSE(FindHamiltonianPath(g).has_value());
}

TEST(HamiltonianTest, DisconnectedHasNoPath) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  EXPECT_FALSE(FindHamiltonianPath(g).has_value());
}

TEST(HamiltonianTest, TinyGraphs) {
  EXPECT_TRUE(FindHamiltonianPath(Graph(0)).has_value());
  EXPECT_TRUE(FindHamiltonianPath(Graph(1)).has_value());
  Graph two(2);
  EXPECT_FALSE(FindHamiltonianPath(two).has_value());
  two.AddEdge(0, 1);
  EXPECT_TRUE(FindHamiltonianPath(two).has_value());
}

TEST(SccTest, DagHasSingletonComponents) {
  Digraph g(4);
  g.AddArc(0, 1);
  g.AddArc(1, 2);
  g.AddArc(2, 3);
  auto scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 4);
}

TEST(SccTest, CycleIsOneComponent) {
  Digraph g(3);
  g.AddArc(0, 1);
  g.AddArc(1, 2);
  g.AddArc(2, 0);
  auto scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 1);
  EXPECT_EQ(scc.component[0], scc.component[1]);
}

TEST(SccTest, MixedComponentsAndTopologicalOrder) {
  // 0 <-> 1 -> 2 <-> 3, and 4 isolated.
  Digraph g(5);
  g.AddArc(0, 1);
  g.AddArc(1, 0);
  g.AddArc(1, 2);
  g.AddArc(2, 3);
  g.AddArc(3, 2);
  auto scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 3);
  EXPECT_EQ(scc.component[0], scc.component[1]);
  EXPECT_EQ(scc.component[2], scc.component[3]);
  EXPECT_NE(scc.component[0], scc.component[2]);
  // Tarjan ids are reverse-topological: the {2,3} sink comes before {0,1}.
  EXPECT_LT(scc.component[2], scc.component[0]);
}

TEST(SccTest, DeepChainNoStackOverflow) {
  int n = 200000;
  Digraph g(n);
  for (int i = 0; i + 1 < n; ++i) g.AddArc(i, i + 1);
  auto scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, n);
}

TEST(GeneratorsTest, GnpRespectsExtremes) {
  Graph empty = GnpRandom(10, 0.0, 1);
  EXPECT_EQ(empty.num_edges(), 0u);
  Graph full = GnpRandom(10, 1.0, 1);
  EXPECT_EQ(full.num_edges(), 45u);
}

TEST(GeneratorsTest, GnpDeterministicInSeed) {
  Graph a = GnpRandom(20, 0.3, 42);
  Graph b = GnpRandom(20, 0.3, 42);
  for (int u = 0; u < 20; ++u) {
    for (int v = 0; v < 20; ++v) EXPECT_EQ(a.HasEdge(u, v), b.HasEdge(u, v));
  }
}

TEST(GeneratorsTest, PlantedCliqueIsPresent) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Graph g = PlantedClique(30, 0.1, 6, seed);
    EXPECT_TRUE(FindCliqueBb(g, 6).has_value()) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace paraquery

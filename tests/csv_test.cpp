#include <gtest/gtest.h>

#include <sstream>

#include "relational/csv.hpp"

namespace paraquery {
namespace {

TEST(CsvTest, LoadsIntegersAndStrings) {
  Database db;
  RelId id = LoadCsv(&db,
                     "EP",
                     "# employee,project\n"
                     "1, kernel\n"
                     "1, compiler\n"
                     "2, kernel\n")
                 .ValueOrDie();
  const Relation& rel = db.relation(id);
  EXPECT_EQ(rel.arity(), 2u);
  EXPECT_EQ(rel.size(), 3u);
  Value kernel = db.dict().Find("kernel");
  ASSERT_NE(kernel, -1);
  EXPECT_TRUE(rel.Contains(std::vector<Value>{1, kernel}));
}

TEST(CsvTest, NegativeAndLargeNumbers) {
  // The largest admissible integer literal is kCodeBase - 1 (2^62 - 1);
  // larger ones would collide with the dictionary's reserved code range and
  // are interned as strings instead (see DictRangeLiteralBecomesString).
  Database db;
  RelId id = LoadCsv(&db, "R", "-5, 4611686018427387903\n").ValueOrDie();
  EXPECT_EQ(db.relation(id).At(0, 0), -5);
  EXPECT_EQ(db.relation(id).At(0, 1), 4611686018427387903LL);
}

TEST(CsvTest, RejectsRaggedRows) {
  Database db;
  auto r = LoadCsv(&db, "R", "1,2\n3\n");
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, RejectsEmptyAndDuplicate) {
  Database db;
  EXPECT_FALSE(LoadCsv(&db, "R", "# only comments\n").ok());
  LoadCsv(&db, "R", "1\n").ValueOrDie();
  EXPECT_EQ(LoadCsv(&db, "R", "2\n").status().code(),
            StatusCode::kAlreadyExists);
}

TEST(CsvTest, SkipsBlankLinesAndTrimsCells) {
  Database db;
  RelId id = LoadCsv(&db, "R", "\n  1 ,  2  \n\n  3,4\n\n").ValueOrDie();
  EXPECT_EQ(db.relation(id).size(), 2u);
  EXPECT_EQ(db.relation(id).At(0, 1), 2);
}

TEST(CsvTest, MixedCellTypesWithinColumn) {
  // '12a' is not numeric: interned as a string; '12' is numeric.
  Database db;
  RelId id = LoadCsv(&db, "R", "12\n12a\n").ValueOrDie();
  EXPECT_EQ(db.relation(id).At(0, 0), 12);
  EXPECT_EQ(db.relation(id).At(1, 0), db.dict().Find("12a"));
}

TEST(CsvTest, RoundTripThroughWriteCsv) {
  Database db;
  RelId id = LoadCsv(&db, "R", "1,alpha\n2,beta\n").ValueOrDie();
  std::ostringstream out;
  WriteCsv(db, id, &out, /*use_dict=*/true);
  Database db2;
  RelId id2 = LoadCsv(&db2, "R", out.str()).ValueOrDie();
  EXPECT_EQ(db2.relation(id2).size(), 2u);
  EXPECT_NE(db2.dict().Find("alpha"), -1);
  // Numeric export path (codes as integers).
  std::ostringstream raw;
  WriteCsv(db, id, &raw, /*use_dict=*/false);
  EXPECT_NE(raw.str().find("0"), std::string::npos);
}

TEST(CsvTest, OverflowLiteralFallsBackToString) {
  // A digit run too large for Value used to reach std::stoll and abort the
  // process with an uncaught std::out_of_range. It now loads as an interned
  // string.
  Database db;
  RelId id =
      LoadCsv(&db, "R", "99999999999999999999, 1\n-99999999999999999999, 2\n")
          .ValueOrDie();
  EXPECT_EQ(db.relation(id).size(), 2u);
  Value big = db.dict().Find("99999999999999999999");
  ASSERT_NE(big, Dictionary::kNotFound);
  EXPECT_EQ(db.relation(id).At(0, 0), big);
  EXPECT_EQ(db.relation(id).At(1, 0), db.dict().Find("-99999999999999999999"));
  EXPECT_EQ(db.relation(id).At(0, 1), 1);
}

TEST(CsvTest, DictRangeLiteralBecomesString) {
  // An in-range int64 literal that falls inside the dictionary's reserved
  // code range is interned, keeping stored integers disjoint from codes.
  Database db;
  RelId id = LoadCsv(&db, "R", "4611686018427387904\n").ValueOrDie();
  Value v = db.relation(id).At(0, 0);
  EXPECT_TRUE(db.dict().Contains(v));
  EXPECT_EQ(db.dict().Lookup(v), "4611686018427387904");
}

TEST(CsvTest, IntegerEqualToDictCodeRoundTrips) {
  // Regression: with dense-from-0 dictionary codes, WriteCsv(use_dict=true)
  // printed the dictionary string for ANY cell whose integer value collided
  // with a code — here the 0 and 1 cells would have come back as "alpha" and
  // "beta". Codes now live in a disjoint range, so integers survive.
  Database db;
  RelId id = LoadCsv(&db, "R", "0, alpha\n1, beta\n").ValueOrDie();
  std::ostringstream out;
  WriteCsv(db, id, &out, /*use_dict=*/true);
  Database db2;
  RelId id2 = LoadCsv(&db2, "R", out.str()).ValueOrDie();
  ASSERT_EQ(db2.relation(id2).size(), 2u);
  EXPECT_EQ(db2.relation(id2).At(0, 0), 0);
  EXPECT_EQ(db2.relation(id2).At(1, 0), 1);
  EXPECT_EQ(db2.relation(id2).At(0, 1), db2.dict().Find("alpha"));
  EXPECT_EQ(db2.relation(id2).At(1, 1), db2.dict().Find("beta"));
}

TEST(CsvTest, MissingFileIsNotFound) {
  Database db;
  EXPECT_EQ(LoadCsvFile(&db, "R", "/nonexistent/file.csv").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace paraquery

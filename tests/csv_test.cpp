#include <gtest/gtest.h>

#include <sstream>

#include "relational/csv.hpp"

namespace paraquery {
namespace {

TEST(CsvTest, LoadsIntegersAndStrings) {
  Database db;
  RelId id = LoadCsv(&db,
                     "EP",
                     "# employee,project\n"
                     "1, kernel\n"
                     "1, compiler\n"
                     "2, kernel\n")
                 .ValueOrDie();
  const Relation& rel = db.relation(id);
  EXPECT_EQ(rel.arity(), 2u);
  EXPECT_EQ(rel.size(), 3u);
  Value kernel = db.dict().Find("kernel");
  ASSERT_NE(kernel, -1);
  EXPECT_TRUE(rel.Contains(std::vector<Value>{1, kernel}));
}

TEST(CsvTest, NegativeAndLargeNumbers) {
  Database db;
  RelId id = LoadCsv(&db, "R", "-5, 9223372036854775807\n").ValueOrDie();
  EXPECT_EQ(db.relation(id).At(0, 0), -5);
  EXPECT_EQ(db.relation(id).At(0, 1), 9223372036854775807LL);
}

TEST(CsvTest, RejectsRaggedRows) {
  Database db;
  auto r = LoadCsv(&db, "R", "1,2\n3\n");
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, RejectsEmptyAndDuplicate) {
  Database db;
  EXPECT_FALSE(LoadCsv(&db, "R", "# only comments\n").ok());
  LoadCsv(&db, "R", "1\n").ValueOrDie();
  EXPECT_EQ(LoadCsv(&db, "R", "2\n").status().code(),
            StatusCode::kAlreadyExists);
}

TEST(CsvTest, SkipsBlankLinesAndTrimsCells) {
  Database db;
  RelId id = LoadCsv(&db, "R", "\n  1 ,  2  \n\n  3,4\n\n").ValueOrDie();
  EXPECT_EQ(db.relation(id).size(), 2u);
  EXPECT_EQ(db.relation(id).At(0, 1), 2);
}

TEST(CsvTest, MixedCellTypesWithinColumn) {
  // '12a' is not numeric: interned as a string; '12' is numeric.
  Database db;
  RelId id = LoadCsv(&db, "R", "12\n12a\n").ValueOrDie();
  EXPECT_EQ(db.relation(id).At(0, 0), 12);
  EXPECT_EQ(db.relation(id).At(1, 0), db.dict().Find("12a"));
}

TEST(CsvTest, RoundTripThroughWriteCsv) {
  Database db;
  RelId id = LoadCsv(&db, "R", "1,alpha\n2,beta\n").ValueOrDie();
  std::ostringstream out;
  WriteCsv(db, id, &out, /*use_dict=*/true);
  Database db2;
  RelId id2 = LoadCsv(&db2, "R", out.str()).ValueOrDie();
  EXPECT_EQ(db2.relation(id2).size(), 2u);
  EXPECT_NE(db2.dict().Find("alpha"), -1);
  // Numeric export path (codes as integers).
  std::ostringstream raw;
  WriteCsv(db, id, &raw, /*use_dict=*/false);
  EXPECT_NE(raw.str().find("0"), std::string::npos);
}

TEST(CsvTest, MissingFileIsNotFound) {
  Database db;
  EXPECT_EQ(LoadCsvFile(&db, "R", "/nonexistent/file.csv").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace paraquery

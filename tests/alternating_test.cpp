// Tests for the Section 4 alternating (AW[P]) extension: the alternating
// weighted satisfiability solver and its reduction to first-order queries.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "eval/fo.hpp"
#include "reductions/alternating.hpp"

namespace paraquery {
namespace {

AlternatingInstance Make(Circuit c, std::vector<std::vector<int>> blocks,
                         std::vector<int> weights) {
  AlternatingInstance inst;
  inst.circuit = std::move(c);
  inst.blocks = std::move(blocks);
  inst.weights = std::move(weights);
  return inst;
}

TEST(AlternatingSolverTest, PureExistentialMatchesWeightedSat) {
  // One ∃ block over all inputs == ordinary weighted satisfiability.
  Circuit c = AndOfInputs(3);
  auto yes = Make(c, {{0, 1, 2}}, {3});
  EXPECT_TRUE(SolveAlternatingWeightedSat(yes).ValueOrDie());
  auto no = Make(c, {{0, 1, 2}}, {2});
  EXPECT_FALSE(SolveAlternatingWeightedSat(no).ValueOrDie());
}

TEST(AlternatingSolverTest, ExistsForallSemantics) {
  // C = OR(x0, x1) over blocks V1 = {x0}, V2 = {x1}.
  // ∃ S1 (k=1) ∀ S2 (k=1): choosing x0 makes the OR true whatever x1 does:
  // true. With C = AND(x0, x1): ∃x0 ∀x1: x1 = itself always set -> true;
  // contrast AND(x0, x1, x2) with V2 = {x1, x2}, k2 = 1: the ∀ can pick x1
  // only or x2 only — AND fails: false.
  Circuit or2 = OrOfInputs(2);
  EXPECT_TRUE(SolveAlternatingWeightedSat(Make(or2, {{0}, {1}}, {1, 1}))
                  .ValueOrDie());
  Circuit and3 = AndOfInputs(3);
  EXPECT_FALSE(SolveAlternatingWeightedSat(Make(and3, {{0}, {1, 2}}, {1, 1}))
                   .ValueOrDie());
  // OR over the ∀ block: any single choice satisfies: true.
  Circuit or3 = OrOfInputs(3);
  EXPECT_TRUE(SolveAlternatingWeightedSat(Make(or3, {{0}, {1, 2}}, {1, 1}))
                  .ValueOrDie());
}

TEST(AlternatingSolverTest, OversizedWeightSemantics) {
  Circuit or2 = OrOfInputs(2);
  // ∃ block weight exceeding the block: false.
  EXPECT_FALSE(SolveAlternatingWeightedSat(Make(or2, {{0}}, {2})).ValueOrDie());
  // ∀ block weight exceeding the block: vacuously true (no subsets).
  EXPECT_TRUE(SolveAlternatingWeightedSat(Make(or2, {{0}, {1}}, {1, 2}))
                  .ValueOrDie());
}

TEST(AlternatingSolverTest, ValidationCatchesBadInstances) {
  Circuit c = OrOfInputs(2);
  auto overlap = Make(c, {{0, 1}, {1}}, {1, 1});
  EXPECT_FALSE(SolveAlternatingWeightedSat(overlap).ok());
  Circuit with_not(1);
  with_not.SetOutput(with_not.AddGate(GateKind::kNot, {0}));
  auto non_monotone = Make(with_not, {{0}}, {1});
  EXPECT_FALSE(SolveAlternatingWeightedSat(non_monotone).ok());
}

TEST(AlternatingReductionTest, QueryStructure) {
  Circuit c = OrOfInputs(4);
  auto inst = Make(c, {{0, 1}, {2, 3}}, {1, 1});
  auto red = AlternatingToFo(inst).ValueOrDie();
  // Variables: x1_1, x2_1, w, y.
  EXPECT_EQ(red.query.NumVariables(), 4);
  EXPECT_TRUE(red.db.HasRelation("P"));
  EXPECT_TRUE(red.db.HasRelation("C"));
}

// The headline property: query truth == alternating solver verdict.
class AlternatingPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AlternatingPropertyTest, FoQueryMatchesSolver) {
  Rng rng(GetParam());
  // Small random monotone circuit over 4 inputs.
  Circuit c(4);
  int g1 = c.AddGate(rng.Chance(0.5) ? GateKind::kAnd : GateKind::kOr,
                     {0, 1, static_cast<int>(rng.Below(4))});
  int g2 = c.AddGate(rng.Chance(0.5) ? GateKind::kAnd : GateKind::kOr,
                     {2, 3, g1});
  c.SetOutput(c.AddGate(rng.Chance(0.5) ? GateKind::kAnd : GateKind::kOr,
                        {g1, g2}));
  // Two blocks (∃ then ∀), weight 1 each, random split of the inputs.
  std::vector<int> v1, v2;
  for (int i = 0; i < 4; ++i) (rng.Chance(0.5) ? v1 : v2).push_back(i);
  if (v1.empty()) {
    v1.push_back(v2.back());
    v2.pop_back();
  }
  if (v2.empty()) {
    v2.push_back(v1.back());
    v1.pop_back();
  }
  auto inst = Make(c, {v1, v2}, {1, 1});
  bool truth = SolveAlternatingWeightedSat(inst).ValueOrDie();
  auto red = AlternatingToFo(inst).ValueOrDie();
  FoOptions fo;
  fo.max_rows = 50'000'000;
  bool query = FirstOrderNonempty(red.db, red.query, fo).ValueOrDie();
  EXPECT_EQ(truth, query) << "|V1|=" << v1.size() << " |V2|=" << v2.size();
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlternatingPropertyTest,
                         ::testing::Range<uint64_t>(1, 21));

TEST(AlternatingReductionTest, WeightTwoExistentialBlock) {
  // ∃ two distinct inputs from V1 such that AND(V1) quantified ... use
  // C = AND(x0, x1): ∃ S1 = {x0, x1}: true.
  Circuit c = AndOfInputs(2);
  auto inst = Make(c, {{0, 1}}, {2});
  ASSERT_TRUE(SolveAlternatingWeightedSat(inst).ValueOrDie());
  auto red = AlternatingToFo(inst).ValueOrDie();
  EXPECT_TRUE(FirstOrderNonempty(red.db, red.query).ValueOrDie());
  // k = 1 cannot satisfy the AND.
  auto inst1 = Make(c, {{0, 1}}, {1});
  ASSERT_FALSE(SolveAlternatingWeightedSat(inst1).ValueOrDie());
  auto red1 = AlternatingToFo(inst1).ValueOrDie();
  EXPECT_FALSE(FirstOrderNonempty(red1.db, red1.query).ValueOrDie());
}

TEST(AlternatingReductionTest, ForallWeightTwo) {
  // C = OR(x1, x2) with V1 = {x0} (∃, irrelevant), V2 = {x1, x2} (∀, k=2):
  // the single ∀ choice sets both -> OR true. With AND(x1, x2) also true;
  // with AND(x0, x1, x2) and k1=1 on {x0}: ∃x0 ∀{x1,x2}: all three set:
  // true.
  Circuit and3 = AndOfInputs(3);
  auto inst = Make(and3, {{0}, {1, 2}}, {1, 2});
  ASSERT_TRUE(SolveAlternatingWeightedSat(inst).ValueOrDie());
  auto red = AlternatingToFo(inst).ValueOrDie();
  FoOptions fo;
  fo.max_rows = 50'000'000;
  EXPECT_TRUE(FirstOrderNonempty(red.db, red.query, fo).ValueOrDie());
}

}  // namespace
}  // namespace paraquery

// Observability layer: tracing must never change results (byte-identity
// differential across every route and thread width), aborted queries must
// still export well-formed trace JSON, EXPLAIN ANALYZE must annotate
// executed plans with wall time, and abort causes must surface in .stats
// and the metrics registry.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/fault_injection.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "query/parser.hpp"
#include "workload/generators.hpp"

namespace paraquery {
namespace {

// Minimal structural JSON check: balanced braces/brackets outside strings,
// valid escape handling, non-empty, object at top level. Catches the
// realistic failure modes of hand-emitted JSON (truncated output, an
// unescaped quote in a span detail, a trailing comma is NOT caught — the CI
// job runs python3 -m json.tool for full validation).
bool LooksLikeWellFormedJson(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character inside a string
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return !in_string && stack.empty() && !s.empty() && s.front() == '{';
}

const char* kDatalogTc =
    "path(x, y) :- E(x, y).\n"
    "path(x, y) :- path(x, z), E(z, y).\n"
    "@goal path.\n";

// One query per engine route (acyclic Yannakakis, cyclic/WCOJ, Theorem 2
// color coding, UCQ expansion, Datalog fixpoint, active-domain algebra).
struct RouteCase {
  const char* label;
  const char* text;
};

const RouteCase kRoutes[] = {
    {"acyclic", "ans(x, y) :- E(x, z), E(z, y)."},
    {"cyclic", "ans(x, y) :- E(x, y), E(y, z), E(z, x)."},
    {"theorem2", "ans(x) :- E(x, y), E(y, z), x != z."},
    {"ucq", "ans(x) := exists y . (E(x, y) or E(y, x))."},
    {"datalog", kDatalogTc},
    {"fo", "ans(x) := forall y . (E(x, y) or not E(y, x))."},
};

TEST(TracingDifferentialTest, ResultsByteIdenticalWithTracingOnAndOff) {
  Database db = GraphDatabase(GnpRandom(14, 0.3, 23));
  for (const RouteCase& rc : kRoutes) {
    SCOPED_TRACE(rc.label);
    EngineOptions base;
    Engine reference_engine(db, base);
    auto reference = reference_engine.RunText(rc.text, &db.dict());
    ASSERT_TRUE(reference.ok()) << reference.status();
    for (size_t threads : {size_t{1}, size_t{4}}) {
      EngineOptions options;
      options.threads = threads;
      options.trace = true;
      Engine engine(db, options);
      auto traced = engine.RunText(rc.text, &db.dict());
      ASSERT_TRUE(traced.ok()) << traced.status();
      // Answers are sorted + deduplicated: byte identity, not set equality.
      ASSERT_EQ(traced.value().size(), reference.value().size());
      EXPECT_TRUE(traced.value().data() == reference.value().data())
          << "threads=" << threads;
      ASSERT_NE(engine.tracer(), nullptr);
      EXPECT_GT(engine.tracer()->event_count(), 0u);
      EXPECT_TRUE(LooksLikeWellFormedJson(engine.tracer()->ChromeTraceJson()));
    }
  }
}

TEST(TracingDifferentialTest, DatalogFixpointTraceHasHierarchySpans) {
  Database db = GraphDatabase(GnpRandom(40, 0.12, 5));
  EngineOptions options;
  options.threads = 4;
  options.trace = true;
  Engine engine(db, options);
  auto result = engine.RunText(kDatalogTc, &db.dict());
  ASSERT_TRUE(result.ok()) << result.status();
  std::string json = engine.tracer()->ChromeTraceJson();
  EXPECT_TRUE(LooksLikeWellFormedJson(json));
  EXPECT_NE(json.find("\"round\""), std::string::npos);
  EXPECT_NE(json.find("\"firing\""), std::string::npos);
  EXPECT_NE(json.find("\"route.datalog\""), std::string::npos);
  EXPECT_NE(json.find("\"query\""), std::string::npos);
  std::string profile = engine.tracer()->TextProfile();
  EXPECT_NE(profile.find("round"), std::string::npos);
  EXPECT_NE(profile.find("firing"), std::string::npos);
}

TEST(TracingAbortTest, DeadlineAbortStillExportsWellFormedTrace) {
  // Big enough that the fixpoint cannot finish in a millisecond.
  Database db = GraphDatabase(GnpRandom(400, 0.05, 7));
  EngineOptions options;
  options.threads = 4;
  options.trace = true;
  options.limits.max_wall_ms = 1;
  Engine engine(db, options);
  auto result = engine.RunText(kDatalogTc, &db.dict());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(LooksLikeWellFormedJson(engine.tracer()->ChromeTraceJson()));
  EXPECT_EQ(engine.last_stats().abort_reason, "deadline_exceeded");
  EXPECT_GE(engine.metrics().counter("pq_aborts_deadline_total").value(), 1u);
  // The engine stays usable and the next trace is fresh.
  engine.options().limits.max_wall_ms = 0;
  auto ok = engine.RunText(kDatalogTc, &db.dict());
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_TRUE(engine.last_stats().abort_reason.empty());
  EXPECT_TRUE(LooksLikeWellFormedJson(engine.tracer()->ChromeTraceJson()));
}

TEST(TracingAbortTest, CancelledQueryStillExportsWellFormedTrace) {
  Database db = GraphDatabase(GnpRandom(20, 0.25, 9));
  QueryContext qc;
  qc.Cancel();
  EngineOptions options;
  options.trace = true;
  options.query_ctx = &qc;
  Engine engine(db, options);
  auto result = engine.RunText(kDatalogTc, &db.dict());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_TRUE(LooksLikeWellFormedJson(engine.tracer()->ChromeTraceJson()));
  EXPECT_EQ(engine.last_stats().abort_reason, "cancelled");
  EXPECT_GE(engine.metrics().counter("pq_aborts_cancelled_total").value(),
            1u);
}

TEST(TracingAbortTest, InjectedFaultStillExportsWellFormedTrace) {
  Database db = GraphDatabase(GnpRandom(20, 0.25, 13));
  EngineOptions options;
  options.threads = 4;
  options.trace = true;
  Engine engine(db, options);
  FaultInjector::ArmPoint("datalog.round", 1);
  auto result = engine.RunText(kDatalogTc, &db.dict());
  bool fired = FaultInjector::fired();
  FaultInjector::Disarm();
  ASSERT_TRUE(fired);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(LooksLikeWellFormedJson(engine.tracer()->ChromeTraceJson()));
  // Mid-fixpoint abort: the trace keeps whatever spans closed before the
  // unwind, and recovery works.
  auto ok = engine.RunText(kDatalogTc, &db.dict());
  ASSERT_TRUE(ok.ok()) << ok.status();
}

TEST(EngineWallClockTest, EveryRouteRecordsEndToEndWallTime) {
  Database db = GraphDatabase(GnpRandom(14, 0.3, 31));
  for (const RouteCase& rc : kRoutes) {
    SCOPED_TRACE(rc.label);
    Engine engine(db, EngineOptions{});
    auto result = engine.RunText(rc.text, &db.dict());
    ASSERT_TRUE(result.ok()) << result.status();
    // Engine-level wall covers parse-to-answer on every route — including
    // the active-domain algebra and plan-cache hits, which the per-plan
    // PlanStats timer does not see.
    EXPECT_GT(engine.last_stats().wall_seconds, 0.0);
    EXPECT_NE(engine.last_stats().ToString().find("wall_ms="),
              std::string::npos);
  }
}

TEST(AnalyzeTest, CyclicQueryShowsPerNodeTimeOnTheMultiwayBag) {
  Database db = GraphDatabase(GnpRandom(14, 0.3, 17));
  Engine engine(db, EngineOptions{});
  auto report =
      engine.AnalyzeText("ans(x, y) :- E(x, y), E(y, z), E(z, x).",
                         &db.dict());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_NE(report.value().find("MultiwayJoin"), std::string::npos);
  EXPECT_NE(report.value().find("time="), std::string::npos);
  EXPECT_NE(report.value().find("self="), std::string::npos);
  EXPECT_NE(report.value().find("actual="), std::string::npos);
  EXPECT_NE(report.value().find("rows="), std::string::npos);
}

TEST(AnalyzeTest, DatalogReportsRulePlansWithExecutionCounts) {
  Database db = GraphDatabase(GnpRandom(20, 0.2, 19));
  Engine engine(db, EngineOptions{});
  auto report = engine.AnalyzeText(kDatalogTc, &db.dict());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_NE(report.value().find("executions="), std::string::npos);
  EXPECT_NE(report.value().find("-- plan"), std::string::npos);
  // Analyze is one-shot: a plain run afterwards captures nothing new and
  // the engine keeps working.
  auto again = engine.RunText(kDatalogTc, &db.dict());
  EXPECT_TRUE(again.ok()) << again.status();
}

TEST(MetricsTest, RegistryCountsQueriesAndExposesBothFormats) {
  Database db = GraphDatabase(GnpRandom(14, 0.3, 29));
  Engine engine(db, EngineOptions{});
  ASSERT_TRUE(
      engine.RunText("ans(x, y) :- E(x, z), E(z, y).", &db.dict()).ok());
  ASSERT_TRUE(engine.RunText(kDatalogTc, &db.dict()).ok());
  EXPECT_EQ(engine.metrics().counter("pq_queries_total").value(), 2u);
  EXPECT_GT(engine.metrics().histogram("pq_query_latency_us").count(), 0u);
  EXPECT_GT(engine.metrics().histogram("pq_operator_rows").count(), 0u);
  std::string prom = engine.metrics().PrometheusText();
  EXPECT_NE(prom.find("# TYPE pq_queries_total counter"), std::string::npos);
  EXPECT_NE(prom.find("pq_query_latency_us_bucket"), std::string::npos);
  std::string json = engine.metrics().JsonDump();
  EXPECT_TRUE(LooksLikeWellFormedJson(json));
  EXPECT_NE(json.find("pq_queries_total"), std::string::npos);
}

}  // namespace
}  // namespace paraquery

// Cross-engine integration tests: independent evaluation paths must agree
// on the same queries — the strongest correctness signal the library has.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "eval/acyclic.hpp"
#include "eval/datalog_eval.hpp"
#include "eval/fo.hpp"
#include "eval/inequality.hpp"
#include "eval/naive.hpp"
#include "eval/ucq.hpp"
#include "graph/generators.hpp"
#include "query/parser.hpp"
#include "workload/generators.hpp"

namespace paraquery {
namespace {

// Three-way agreement on acyclic ≠-queries: engine facade, Theorem 2
// evaluator (certified), naive backtracking.
class ThreeWayAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ThreeWayAgreementTest, EngineIneqNaiveAgree) {
  Rng rng(GetParam());
  Database db = RandomBinaryDatabase(3, 30, 8, rng.Next());
  ConjunctiveQuery q = RandomAcyclicNeqQuery(3, 4, 3, rng.Next());
  q.head = {Term::Var(0)};
  IneqOptions certified;
  certified.driver = IneqOptions::Driver::kCertified;
  EngineOptions eo;
  eo.inequality = certified;
  Engine engine(db, eo);

  auto via_engine = engine.Run(q).ValueOrDie();
  auto via_ineq = IneqEvaluate(db, q, certified).ValueOrDie();
  auto via_naive = NaiveEvaluateCq(db, q).ValueOrDie();
  EXPECT_TRUE(via_engine.EqualsAsSet(via_naive)) << q.ToString();
  EXPECT_TRUE(via_ineq.EqualsAsSet(via_naive)) << q.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreeWayAgreementTest,
                         ::testing::Range<uint64_t>(1, 26));

// Positive queries: the UCQ expansion and the first-order evaluator are
// entirely different code paths that must produce identical answers.
class PositiveVsFoTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PositiveVsFoTest, UcqAndFoAgree) {
  Rng rng(GetParam());
  Database db = RandomBinaryDatabase(2, 25, 6, rng.Next());
  // Random positive formula in FO syntax over R0/R1.
  const char* shapes[] = {
      "ans(x) := exists y . (R0(x, y) or R1(y, x)).",
      "ans(x) := exists y . (R0(x, y) and (R1(x, y) or R0(y, x))).",
      "ans(x) := (exists y . R0(x, y)) or (exists y . R1(x, y)).",
      "ans(x) := exists y, z . (R0(x, y) and R1(y, z)).",
      "ans(x) := exists y . (R0(x, y) and exists z . (R1(y, z) or R0(z, y))).",
  };
  const char* text = shapes[rng.Below(5)];
  auto fo = ParseFirstOrder(text).ValueOrDie();
  auto positive = PositiveQuery::FromFirstOrder(fo).ValueOrDie();
  auto via_ucq = EvaluatePositive(db, positive).ValueOrDie();
  auto via_fo = EvaluateFirstOrder(db, fo).ValueOrDie();
  EXPECT_TRUE(via_ucq.EqualsAsSet(via_fo)) << text;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PositiveVsFoTest,
                         ::testing::Range<uint64_t>(1, 31));

// Non-recursive Datalog equals the corresponding conjunctive query.
TEST(DatalogVsCqTest, NonRecursiveProgramMatchesCq) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Database db = RandomBinaryDatabase(1, 40, 10, seed);
    auto prog = ParseDatalog("ans(x, z) :- R0(x, y), R0(y, z).").ValueOrDie();
    auto cq = ParseConjunctive("ans(x, z) :- R0(x, y), R0(y, z).").ValueOrDie();
    auto via_datalog = EvaluateDatalog(db, prog).ValueOrDie();
    auto via_cq = NaiveEvaluateCq(db, cq).ValueOrDie();
    EXPECT_TRUE(via_datalog.EqualsAsSet(via_cq)) << "seed=" << seed;
  }
}

// Datalog TC equals FO-expressible bounded reachability on short chains.
TEST(DatalogVsFoTest, BoundedReachabilityAgrees) {
  Database db = GraphDatabase(PathGraph(5));
  auto tc = EvaluateDatalog(db, TransitiveClosureProgram()).ValueOrDie();
  // Paths of length <= 2 via FO (E is symmetric here).
  auto fo = ParseFirstOrder(
                "ans(x, y) := E(x, y) or (exists z . (E(x, z) and E(z, y))).")
                .ValueOrDie();
  auto two_hop = EvaluateFirstOrder(db, fo).ValueOrDie();
  // Every 2-hop pair is in TC.
  for (size_t r = 0; r < two_hop.size(); ++r) {
    std::vector<Value> row(two_hop.Row(r).begin(), two_hop.Row(r).end());
    if (row[0] == row[1]) continue;  // TC as defined has no x->x via E sym?
    EXPECT_TRUE(tc.Contains(row)) << row[0] << "," << row[1];
  }
}

// The decision variants agree with emptiness of the full evaluation, for
// every engine, on the same instances.
class DecisionConsistencyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DecisionConsistencyTest, NonemptyIffAnswersExist) {
  Rng rng(GetParam());
  Database db = RandomBinaryDatabase(2, 12, 5, rng.Next());
  ConjunctiveQuery q = RandomAcyclicNeqQuery(2, 3, 2, rng.Next());
  // Boolean version.
  ConjunctiveQuery boolean = q;
  boolean.head.clear();

  auto naive_full = NaiveEvaluateCq(db, boolean).ValueOrDie();
  EXPECT_EQ(NaiveCqNonempty(db, boolean).ValueOrDie(), !naive_full.empty());

  IneqOptions certified;
  certified.driver = IneqOptions::Driver::kCertified;
  auto fpt_full = IneqEvaluate(db, boolean, certified).ValueOrDie();
  EXPECT_EQ(IneqNonempty(db, boolean, certified).ValueOrDie(),
            !fpt_full.empty());

  if (!boolean.HasComparisons()) {
    auto acy_full = AcyclicEvaluate(db, boolean).ValueOrDie();
    EXPECT_EQ(AcyclicNonempty(db, boolean).ValueOrDie(), !acy_full.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecisionConsistencyTest,
                         ::testing::Range<uint64_t>(1, 21));

// End-to-end: the engine handles the paper's three running examples with
// ground truth computed independently.
TEST(PaperExamplesTest, AllThreeRunningExamples) {
  // 1. Employees on >1 project.
  Database ep = EmployeeProjects(300, 40, 1, 3, 13);
  Engine e1(ep);
  auto multi = e1.Run(MultiProjectQuery()).ValueOrDie();
  EXPECT_TRUE(multi.EqualsAsSet(
      NaiveEvaluateCq(ep, MultiProjectQuery()).ValueOrDie()));

  // 2. Students outside their department.
  Database uni = StudentCourses(400, 60, 6, 3, 0.4, 17);
  Engine e2(uni);
  auto outside = e2.Run(OutsideDepartmentQuery()).ValueOrDie();
  EXPECT_TRUE(outside.EqualsAsSet(
      NaiveEvaluateCq(uni, OutsideDepartmentQuery()).ValueOrDie()));

  // 3. Employees paid more than their manager (comparisons).
  Database firm = EmployeeSalaries(200, 5000, 19);
  Engine e3(firm);
  auto higher = e3.Run(HigherPaidThanManagerQuery()).ValueOrDie();
  EXPECT_TRUE(higher.EqualsAsSet(
      NaiveEvaluateCq(firm, HigherPaidThanManagerQuery()).ValueOrDie()));
}

}  // namespace
}  // namespace paraquery
